"""Deterministic fault injection for the resilient serving stack.

Chaos testing here is **replayable**: every fault decision derives from
``default_rng([seed, hour])``, so a schedule is a pure function of its
config — two runs with the same seed inject byte-identical faults and
produce identical event logs.  The harness covers the fault model end to
end:

* *drop* — the tick for an hour never arrives (the next tick's declared
  hour runs ahead of the ring clock; the guard gap-fills);
* *duplicate* — the tick is delivered twice (second is reconciled);
* *reorder* — two adjacent ticks swap (first gap-fills one hour, the
  late one quarantines);
* *corrupt* — the payload is damaged (wrong shape, inf-flooded values,
  or garbage calendar; all quarantine);
* *dark sector* — one sector's KPIs go fully missing for a span of
  hours (the dark tracker must mask its alerts);
* *registry failure* — model loads raise at scheduled hours (the
  engine must degrade, then recover).

:func:`run_chaos_replay` drives a
:class:`~repro.resilience.guard.ResilientHotSpotService` through a
faulted dataset replay and returns a :class:`ChaosReport` pairing the
injected-fault ledger with the observed events — the contract checked by
tests and ``benchmarks/bench_chaos_replay.py`` is *no unhandled
exceptions, every fault evented, no alerts from dark sectors*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.dataset import Dataset
from repro.resilience.guard import ResilientHotSpotService
from repro.serve.registry import ModelRegistry

__all__ = ["ChaosConfig", "FlakyRegistry", "ChaosReport", "chaos_stream", "run_chaos_replay"]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault schedule knobs (all probabilities are per-hour).

    At most one stream fault (drop/duplicate/reorder/corrupt) fires per
    hour, chosen by a deterministic per-hour draw.
    """

    seed: int = 0
    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_reorder: float = 0.0
    p_corrupt: float = 0.0
    #: Sector forced fully missing over ``dark_span`` (None disables).
    dark_sector: int | None = None
    #: Hour interval ``[lo, hi)`` for the forced dark sector.
    dark_span: tuple[int, int] = (0, 0)
    #: Hours at which the model registry starts failing loads.
    registry_fail_hours: tuple[int, ...] = ()
    #: Consecutive loads that fail per scheduled registry fault.
    registry_fail_count: int = 1

    def __post_init__(self) -> None:
        total = self.p_drop + self.p_duplicate + self.p_reorder + self.p_corrupt
        if total > 1.0:
            raise ValueError(f"fault probabilities sum to {total} > 1")
        for name in ("p_drop", "p_duplicate", "p_reorder", "p_corrupt"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


class FlakyRegistry:
    """Registry proxy whose loads fail on demand.

    Wraps a real :class:`~repro.serve.registry.ModelRegistry`;
    :meth:`fail_next` arms the next *n* ``get``/``load`` calls to raise
    :class:`OSError`, simulating registry I/O faults.  Everything else
    delegates.
    """

    def __init__(self, inner: ModelRegistry) -> None:
        self.inner = inner
        self._fail_remaining = 0
        self.failures_injected = 0

    def fail_next(self, count: int = 1) -> None:
        self._fail_remaining += count

    def _maybe_fail(self) -> None:
        if self._fail_remaining > 0:
            self._fail_remaining -= 1
            self.failures_injected += 1
            raise OSError("injected registry I/O failure (chaos)")

    def get(self, key):
        self._maybe_fail()
        return self.inner.get(key)

    def load(self, key):
        self._maybe_fail()
        return self.inner.load(key)

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __contains__(self, key) -> bool:
        return key in self.inner


def _hour_rng(seed: int, hour: int) -> np.random.Generator:
    return np.random.default_rng([seed, hour])


def _corrupt(
    rng: np.random.Generator,
    values: np.ndarray,
    missing: np.ndarray,
    calendar: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, str]:
    """Damage one payload; returns (values, missing, calendar, kind)."""
    kind = ("shape", "inf_flood", "calendar")[int(rng.integers(3))]
    if kind == "shape":
        return values[:-1], missing[:-1], calendar, kind
    if kind == "inf_flood":
        flooded = values.copy()
        flooded[rng.random(flooded.shape) < 0.75] = np.inf
        return flooded, missing, calendar, kind
    return values, missing, np.full(calendar.shape, np.nan), kind


def chaos_stream(
    dataset: Dataset,
    config: ChaosConfig,
    start_hour: int = 0,
    end_hour: int | None = None,
) -> Iterator[tuple[dict, dict | None]]:
    """Yield ``(envelope, fault)`` pairs for a faulted dataset replay.

    Each envelope is ``{"hour", "values", "missing", "calendar"}`` as
    the wire would deliver it; ``fault`` describes the injected fault
    (``None`` for clean ticks).  Dropped hours yield a fault entry with
    no envelope (``envelope is None``) so callers can ledger them.
    """
    kpis = dataset.kpis
    end = kpis.n_hours if end_hour is None else min(end_hour, kpis.n_hours)
    thresholds = np.cumsum(
        [config.p_drop, config.p_duplicate, config.p_reorder, config.p_corrupt]
    )
    hour = start_hour
    while hour < end:
        values = kpis.values[:, hour, :].copy()
        missing = kpis.missing[:, hour, :].copy()
        calendar = np.asarray(dataset.calendar[hour], dtype=np.float64).copy()
        if (
            config.dark_sector is not None
            and config.dark_span[0] <= hour < config.dark_span[1]
        ):
            values[config.dark_sector] = np.nan
            missing[config.dark_sector] = True
        envelope = {
            "hour": hour, "values": values, "missing": missing,
            "calendar": calendar,
        }
        rng = _hour_rng(config.seed, hour)
        draw = rng.random()
        if draw < thresholds[0]:
            yield None, {"hour": hour, "fault": "drop"}
            hour += 1
            continue
        if draw < thresholds[1]:
            yield envelope, {"hour": hour, "fault": "duplicate"}
            yield dict(envelope), None  # the duplicate delivery itself
            hour += 1
            continue
        if draw < thresholds[2] and hour + 1 < end:
            later_values = kpis.values[:, hour + 1, :].copy()
            later_missing = kpis.missing[:, hour + 1, :].copy()
            later = {
                "hour": hour + 1,
                "values": later_values,
                "missing": later_missing,
                "calendar": np.asarray(
                    dataset.calendar[hour + 1], dtype=np.float64
                ).copy(),
            }
            yield later, {"hour": hour, "fault": "reorder"}
            yield envelope, None  # the displaced (now late) tick
            hour += 2
            continue
        if draw < thresholds[3]:
            bad_values, bad_missing, bad_calendar, kind = _corrupt(
                rng, values, missing, calendar
            )
            yield (
                {
                    "hour": hour, "values": bad_values, "missing": bad_missing,
                    "calendar": bad_calendar,
                },
                {"hour": hour, "fault": "corrupt", "kind": kind},
            )
            hour += 1
            continue
        yield envelope, None
        hour += 1


@dataclass
class ChaosReport:
    """Ledger of a chaos replay: what was injected, what was observed."""

    injected: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    unhandled: list[str] = field(default_factory=list)
    ticks_submitted: int = 0
    alerts: int = 0

    @property
    def injected_by_fault(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for fault in self.injected:
            counts[fault["fault"]] = counts.get(fault["fault"], 0) + 1
        return counts

    def events_of(self, kind: str) -> list[dict]:
        return [event for event in self.events if event.get("event") == kind]

    def summary(self) -> dict:
        return {
            "ticks_submitted": self.ticks_submitted,
            "alerts": self.alerts,
            "injected": self.injected_by_fault,
            "events": {
                kind: len(self.events_of(kind))
                for kind in (
                    "quarantine", "gap_fill", "duplicate", "sector_dark",
                    "alert_suppressed", "degraded", "recovered",
                )
            },
            "unhandled_exceptions": len(self.unhandled),
        }


def run_chaos_replay(
    dataset: Dataset,
    service: ResilientHotSpotService,
    config: ChaosConfig,
    start_hour: int = 0,
    end_hour: int | None = None,
    flaky_registry: FlakyRegistry | None = None,
) -> ChaosReport:
    """Drive *service* through a faulted replay of *dataset*.

    Registry faults are armed on *flaky_registry* (which must be the
    registry the service's engine actually uses) at the configured
    hours.  Every exception escaping ``submit_tick`` is recorded in
    ``report.unhandled`` — the resilience contract is that this list is
    empty for any schedule.
    """
    report = ChaosReport()
    fail_hours = set(config.registry_fail_hours)
    telemetry = service.telemetry
    for envelope, fault in chaos_stream(dataset, config, start_hour, end_hour):
        if fault is not None:
            report.injected.append(fault)
        if envelope is None:
            continue  # dropped tick: nothing arrives
        if flaky_registry is not None and envelope["hour"] in fail_hours:
            flaky_registry.fail_next(config.registry_fail_count)
            fail_hours.discard(envelope["hour"])
        report.ticks_submitted += 1
        seen_before = telemetry.events_seen
        try:
            events = service.submit_tick(
                envelope["values"],
                envelope["missing"],
                envelope["calendar"],
                hour=envelope["hour"],
            )
        except Exception as error:  # noqa: BLE001 - the ledger, not the crash
            report.unhandled.append(f"hour {envelope['hour']}: "
                                    f"{type(error).__name__}: {error}")
            continue
        # Engine-level events (degraded/recovered) reach the telemetry
        # log but are not returned by submit_tick; fold the fresh tail
        # in, skipping records submit_tick already returned.
        buffered = telemetry.events()
        delta = telemetry.events_seen - seen_before
        fresh = buffered[len(buffered) - delta:] if delta else []
        returned = {id(event) for event in events}
        events = events + [e for e in fresh if id(e) not in returned]
        for event in events:
            if event.get("type") == "alert":
                report.alerts += 1
            report.events.append(event)
    return report
