"""Tick validation, quarantine, and dark-sector tracking.

The serving layer's parity contract (:mod:`repro.serve.ingest`) only
holds for well-formed input: correctly shaped float64 KPI matrices, a
consistent calendar row, and one tick per hour in order.  Real O&M feeds
violate all of that — sectors go dark, hours are lost, payloads arrive
late, duplicated, or corrupted (paper Sec. II-C motivates its filtering
step with exactly this).  This module is the contract's gatekeeper:

* :class:`TickValidator` checks every incoming tick against the
  ingestor's contract (shape, dtype, NaN/inf budget, calendar
  consistency, hour monotonicity via the ring-buffer clock) and renders
  a :class:`TickVerdict` — accept, reconcile (idempotent duplicate), or
  quarantine with a structured reason;
* :class:`DeadLetterQueue` holds quarantined ticks in a bounded ring so
  operators can inspect failures without the queue growing without
  bound;
* :class:`DarkSectorTracker` counts per-sector runs of fully-missing
  hours and flags sectors whose run exceeds the Sec. II-C threshold
  (half a week by default, mirroring the 50 %-missing-per-week sector
  filter) so downstream forecasts and alerts can mask them.

Validation never mutates ingestor state; the resilient service
(:mod:`repro.resilience.guard`) acts on the verdict.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.tensor import HOURS_PER_DAY, HOURS_PER_WEEK
from repro.serve.ingest import StreamIngestor

__all__ = [
    "ACCEPT",
    "QUARANTINE",
    "RECONCILE",
    "TickVerdict",
    "TickValidator",
    "DeadLetterQueue",
    "DarkSectorTracker",
]

#: Verdict actions.
ACCEPT = "accept"
RECONCILE = "reconcile"
QUARANTINE = "quarantine"

#: Calendar rows are 5-element vectors (hour, weekday, day-of-month,
#: weekend flag, holiday flag) — see repro.synth.calendar_info.
_CALENDAR_WIDTH = 5


@dataclass
class TickVerdict:
    """Outcome of validating one incoming tick.

    Attributes
    ----------
    action:
        One of :data:`ACCEPT`, :data:`RECONCILE` (idempotent duplicate —
        drop silently, already ingested), :data:`QUARANTINE`.
    reason:
        Machine-readable quarantine/reconcile reason (``None`` on plain
        accept).
    detail:
        Human-readable elaboration for the dead-letter record.
    values, missing, calendar_row:
        The normalised payload (float64 values, boolean mask with
        non-finite entries folded in, float64 calendar).  Only populated
        on accept/reconcile; a quarantined payload is left as received.
    gap_hours:
        Number of missing hours to synthesise *before* ingesting this
        tick (declared hour ran ahead of the ring clock).
    declared_hour:
        The hour the tick claimed to be for (the ring clock when the
        tick carried no hour stamp).
    """

    action: str
    reason: str | None = None
    detail: str | None = None
    values: np.ndarray | None = None
    missing: np.ndarray | None = None
    calendar_row: np.ndarray | None = None
    gap_hours: int = 0
    declared_hour: int | None = None


@dataclass
class TickValidator:
    """Check incoming hourly ticks against the ingestor's contract.

    Parameters
    ----------
    n_sectors, n_kpis:
        Expected payload shape.
    max_bad_fraction:
        NaN/inf budget: the tick is quarantined when more than this
        fraction of its entries is missing or non-finite.  The default
        of 0.5 mirrors the Sec. II-C per-week filtering threshold
        applied at tick granularity.
    max_gap_hours:
        Largest forward clock jump that is reconciled by synthesising
        all-missing gap hours; larger jumps are quarantined (they point
        at a clock fault rather than lost hours).
    check_calendar:
        When True, a supplied calendar row must be a finite 5-vector
        whose hour-of-day field matches the ring clock.
    """

    n_sectors: int
    n_kpis: int
    max_bad_fraction: float = 0.5
    max_gap_hours: int = HOURS_PER_DAY
    check_calendar: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.max_bad_fraction <= 1.0:
            raise ValueError(
                f"max_bad_fraction must be in (0, 1], got {self.max_bad_fraction}"
            )
        if self.max_gap_hours < 0:
            raise ValueError(f"max_gap_hours must be >= 0, got {self.max_gap_hours}")

    @classmethod
    def for_ingestor(cls, ingestor: StreamIngestor, **overrides) -> "TickValidator":
        """A validator shaped for *ingestor*."""
        return cls(
            n_sectors=ingestor.n_sectors, n_kpis=ingestor.n_kpis, **overrides
        )

    # ------------------------------------------------------------ validate
    def validate(
        self,
        values,
        missing=None,
        calendar_row=None,
        hour: int | None = None,
        clock: int = 0,
        ring_payload: Callable[[int], tuple[np.ndarray, np.ndarray] | None] | None = None,
    ) -> TickVerdict:
        """Render a verdict for one incoming tick.

        Parameters
        ----------
        values, missing, calendar_row:
            The payload as received (any types — coercion failures are a
            quarantine reason, not an exception).
        hour:
            The hour the tick claims to be for; ``None`` trusts arrival
            order (treated as the current clock).
        clock:
            The ring-buffer clock (``ingestor.hours_seen``): the next
            hour the ingestor expects.
        ring_payload:
            Optional lookup ``hour -> (values, missing)`` into the ring
            for duplicate reconciliation; ``None`` disables it (all
            stale ticks quarantine).
        """
        declared = clock if hour is None else int(hour)

        # --- payload shape and dtype -----------------------------------
        try:
            values = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError) as error:
            return TickVerdict(
                QUARANTINE, "dtype", f"values not numeric: {error}",
                declared_hour=declared,
            )
        expected = (self.n_sectors, self.n_kpis)
        if values.shape != expected:
            return TickVerdict(
                QUARANTINE, "shape",
                f"values shape {values.shape} != expected {expected}",
                declared_hour=declared,
            )
        if missing is None:
            missing = np.isnan(values)
        else:
            try:
                missing = np.asarray(missing, dtype=bool)
            except (TypeError, ValueError) as error:
                return TickVerdict(
                    QUARANTINE, "dtype", f"missing mask not boolean: {error}",
                    declared_hour=declared,
                )
            if missing.shape != expected:
                return TickVerdict(
                    QUARANTINE, "shape",
                    f"missing mask shape {missing.shape} != expected {expected}",
                    declared_hour=declared,
                )
            missing = missing | np.isnan(values)

        # --- NaN/inf budget --------------------------------------------
        # Non-finite non-NaN entries (inf sentinel garbage) are folded
        # into the missing mask; the tick as a whole must stay under the
        # bad-entry budget or it carries no usable signal.
        bad = missing | ~np.isfinite(values)
        bad_fraction = float(bad.mean())
        if bad_fraction > self.max_bad_fraction:
            return TickVerdict(
                QUARANTINE, "bad_value_budget",
                f"{bad_fraction:.1%} of entries missing/non-finite "
                f"(budget {self.max_bad_fraction:.1%})",
                declared_hour=declared,
            )
        missing = bad

        # --- calendar consistency --------------------------------------
        if calendar_row is not None:
            try:
                calendar_row = np.asarray(calendar_row, dtype=np.float64).reshape(-1)
            except (TypeError, ValueError) as error:
                return TickVerdict(
                    QUARANTINE, "calendar", f"calendar row not numeric: {error}",
                    declared_hour=declared,
                )
            if calendar_row.shape != (_CALENDAR_WIDTH,):
                return TickVerdict(
                    QUARANTINE, "calendar",
                    f"calendar row has {calendar_row.size} elements, "
                    f"expected {_CALENDAR_WIDTH}",
                    declared_hour=declared,
                )
            if self.check_calendar:
                if not np.isfinite(calendar_row).all():
                    return TickVerdict(
                        QUARANTINE, "calendar", "calendar row has non-finite entries",
                        declared_hour=declared,
                    )
                expected_hod = declared % HOURS_PER_DAY
                if int(calendar_row[0]) != expected_hod:
                    return TickVerdict(
                        QUARANTINE, "calendar",
                        f"calendar hour-of-day {calendar_row[0]:.0f} != "
                        f"{expected_hod} for hour {declared}",
                        declared_hour=declared,
                    )

        # --- hour monotonicity via the ring clock ----------------------
        if declared < clock:
            payload = ring_payload(declared) if ring_payload is not None else None
            if payload is not None:
                ring_values, ring_missing = payload
                if np.array_equal(
                    ring_values, values, equal_nan=True
                ) and np.array_equal(ring_missing, missing):
                    return TickVerdict(
                        RECONCILE, "duplicate",
                        f"idempotent duplicate of hour {declared}",
                        values=values, missing=missing, calendar_row=calendar_row,
                        declared_hour=declared,
                    )
                return TickVerdict(
                    QUARANTINE, "conflicting_duplicate",
                    f"hour {declared} already ingested with different payload",
                    declared_hour=declared,
                )
            return TickVerdict(
                QUARANTINE, "late",
                f"hour {declared} is behind the ring clock {clock} "
                "(late/out-of-order tick)",
                declared_hour=declared,
            )
        gap = declared - clock
        if gap > self.max_gap_hours:
            return TickVerdict(
                QUARANTINE, "gap_too_large",
                f"hour {declared} jumps {gap} h past the ring clock {clock} "
                f"(max reconcilable gap {self.max_gap_hours} h)",
                declared_hour=declared,
            )
        return TickVerdict(
            ACCEPT,
            values=values, missing=missing, calendar_row=calendar_row,
            gap_hours=gap, declared_hour=declared,
        )


class DeadLetterQueue:
    """Bounded ring of quarantined-tick records.

    Each record is a JSON-able dict (``hour``, ``reason``, ``detail``
    plus whatever context the caller adds).  When the ring is full the
    oldest record is dropped and counted, so totals stay exact while
    memory stays constant.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque[dict] = deque(maxlen=capacity)
        self.total = 0
        self.dropped = 0

    def push(
        self, reason: str, hour: int | None = None, detail: str | None = None, **extra
    ) -> dict:
        """Quarantine one record; returns the stored dict."""
        record = {"hour": hour, "reason": reason, "detail": detail, **extra}
        if len(self._items) == self.capacity:
            self.dropped += 1
        self._items.append(record)
        self.total += 1
        return record

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> list[dict]:
        """Buffered records, oldest first."""
        return list(self._items)

    def counts_by_reason(self) -> dict[str, int]:
        """Histogram of the *buffered* records' reasons."""
        counts: dict[str, int] = {}
        for record in self._items:
            counts[record["reason"]] = counts.get(record["reason"], 0) + 1
        return counts

    def stats(self) -> dict:
        return {
            "buffered": len(self._items),
            "capacity": self.capacity,
            "total": self.total,
            "dropped": self.dropped,
        }


@dataclass
class DarkSectorTracker:
    """Track per-sector runs of fully-missing hours.

    A sector is *dark* once its current run of hours with every KPI
    missing reaches ``threshold_hours``.  The default threshold is half
    a week — the tick-granular analogue of the paper's Sec. II-C rule
    that discards sectors with more than 50 % of a week missing.  Dark
    sectors carry no signal, so the resilient service masks them out of
    alerts until they report again (one non-missing hour resets the
    run).
    """

    n_sectors: int
    threshold_hours: int = HOURS_PER_WEEK // 2
    _run: np.ndarray = field(init=False, repr=False)
    went_dark_total: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.n_sectors < 1:
            raise ValueError(f"n_sectors must be >= 1, got {self.n_sectors}")
        if self.threshold_hours < 1:
            raise ValueError(
                f"threshold_hours must be >= 1, got {self.threshold_hours}"
            )
        self._run = np.zeros(self.n_sectors, dtype=np.int64)

    def observe(self, missing: np.ndarray) -> np.ndarray:
        """Update runs with one hour's ``(n_sectors, n_kpis)`` mask.

        Returns the indices of sectors that crossed into darkness on
        this observation (for event emission).
        """
        missing = np.asarray(missing, dtype=bool)
        if missing.shape[0] != self.n_sectors:
            raise ValueError(
                f"mask covers {missing.shape[0]} sectors, tracker has {self.n_sectors}"
            )
        fully_missing = missing.all(axis=1)
        was_dark = self.dark_mask
        self._run = np.where(fully_missing, self._run + 1, 0)
        newly_dark = np.nonzero(~was_dark & self.dark_mask)[0]
        self.went_dark_total += int(newly_dark.size)
        return newly_dark

    @property
    def dark_mask(self) -> np.ndarray:
        """Boolean ``(n_sectors,)`` mask; True = currently dark."""
        return self._run >= self.threshold_hours

    @property
    def dark_sectors(self) -> list[int]:
        return [int(i) for i in np.nonzero(self.dark_mask)[0]]

    def missing_run(self, sector: int) -> int:
        """Current consecutive fully-missing-hour run for *sector*."""
        return int(self._run[sector])

    def backfill_from_ring(self, ingestor: StreamIngestor) -> None:
        """Rebuild the runs from *ingestor*'s ring-buffer missing mask.

        After a crash the tracker's in-memory runs are gone; the ring
        buffer, restored from snapshot+WAL, still holds the last
        ``capacity`` hours of per-KPI missing masks.  The trailing
        fully-missing run per sector is recomputed from it exactly:
        because ``threshold_hours`` (84 by default) is far below the
        ring capacity (>= 192 h), any run long enough to matter fits
        entirely inside the ring, so the rebuilt state is equal to the
        uninterrupted tracker's (asserted in the fleet parity tests).
        ``went_dark_total`` is a lifetime counter with no ring
        representation; it is left untouched (zero on a fresh tracker).
        """
        if ingestor.n_sectors != self.n_sectors:
            raise ValueError(
                f"ingestor has {ingestor.n_sectors} sectors, "
                f"tracker has {self.n_sectors}"
            )
        hours = min(ingestor.hours_seen, ingestor.capacity)
        if hours == 0:
            self._run = np.zeros(self.n_sectors, dtype=np.int64)
            return
        slots = [
            (ingestor.hours_seen - hours + i) % ingestor.capacity
            for i in range(hours)
        ]
        fully = ingestor.missing[:, slots, :].all(axis=2)  # (n_sectors, hours)
        rev = fully[:, ::-1]
        broke = ~rev  # True where the trailing run stops
        first_false = np.argmax(broke, axis=1)
        run = np.where(broke.any(axis=1), first_false, hours)
        self._run = run.astype(np.int64)

    def stats(self) -> dict:
        return {
            "dark_now": int(self.dark_mask.sum()),
            "went_dark_total": self.went_dark_total,
            "threshold_hours": self.threshold_hours,
            "longest_run": int(self._run.max()) if self.n_sectors else 0,
        }
