"""Write-ahead journal and atomic snapshots for the serving state.

Crash-recovery contract: a service killed at *any* tick and restored
from its checkpoint directory replays to a state **bitwise-equal** to an
uninterrupted run.  Two pieces make that hold:

* every *accepted* tick (including synthesised gap-fill hours) is
  appended to a CRC-guarded binary write-ahead log after it is applied
  but **before** its events are released to the caller (apply → journal
  → acknowledge), so no hour whose effects anything downstream has seen
  can be lost — a tick that crashes mid-apply is simply absent from the
  journal and re-processed on resume;
* periodically the full :class:`~repro.serve.ingest.StreamIngestor`
  state (:meth:`state_dict` — rings, cumulative sums, histories, clock)
  is written to an ``.npz`` snapshot via a temp file and
  :func:`os.replace`, so a snapshot is either complete or absent, never
  torn.

Recovery loads the newest readable snapshot, then replays journal
records with ``hour >= snapshot.hours_seen`` through the ordinary
:meth:`ingest_hour` path.  Because the snapshot restores every float
accumulator exactly and replay applies the identical operations in the
identical order, the recovered state matches the uninterrupted one bit
for bit (asserted in ``tests/test_resilience_checkpoint.py``).

Journal format (little-endian)::

    header   magic b"RWAL0001" | uint32 n_sectors | uint32 n_kpis
    record   uint64 hour | uint32 payload_len | payload | uint32 crc32(payload)
    payload  values float64[n*l] | missing uint8[n*l] | calendar float64[5]

A torn tail record (crash mid-append) fails its length or CRC check and
replay stops cleanly there — exactly the at-most-one-unacknowledged-tick
loss a write-ahead design permits.  Reopening a segment for append
first scans it and truncates any torn tail, so records appended after a
resume always sit directly behind intact ones and are never stranded
beyond a bad record.  Snapshots supersede journal segments: at snapshot
time the journal rotates to a fresh segment and fully-covered segments
are pruned.

Alongside the segments and snapshots the manager persists the ingestor
construction parameters (``meta.json``: shape, anchors, ``w_max``,
capacity, score config) so a journal-only recovery — a crash before the
first snapshot — rebuilds an identically configured ingestor rather
than a default one.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from repro.core.scoring import ScoreConfig
from repro.data.store import write_json_atomic
from repro.serve.ingest import StreamIngestor

__all__ = ["TickJournal", "CheckpointManager", "RecoveredState"]

_MAGIC = b"RWAL0001"
_HEADER = struct.Struct("<II")
_RECORD_HEAD = struct.Struct("<QI")
_CRC = struct.Struct("<I")
_CALENDAR_WIDTH = 5
_META_NAME = "meta.json"


class TickJournal:
    """Append-only write-ahead log of accepted hourly ticks.

    Parameters
    ----------
    path:
        Journal file; created (with header) if absent.  An existing
        file is validated, scanned, and **truncated at the end of its
        last intact record** before append — a torn tail left by a
        crashed writer would otherwise strand every later append behind
        a record :meth:`read_records` refuses to cross.
    n_sectors, n_kpis:
        Payload shape baked into the header.
    sync:
        When True every append is fsync'd (crash-durable at the cost of
        one disk sync per tick); the default flushes to the OS only.
    """

    def __init__(
        self, path: str | Path, n_sectors: int, n_kpis: int, sync: bool = False
    ) -> None:
        self.path = Path(path)
        self.n_sectors = int(n_sectors)
        self.n_kpis = int(n_kpis)
        self.sync = sync
        self._payload_len = (
            8 * self.n_sectors * self.n_kpis  # values float64
            + self.n_sectors * self.n_kpis  # missing uint8
            + 8 * _CALENDAR_WIDTH  # calendar float64
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        if not fresh:
            with open(self.path, "rb") as readable:
                self._check_header(readable)
                valid_end = self._scan_valid_end(readable)
            if valid_end < self.path.stat().st_size:
                # Torn/corrupt tail from a crashed writer: cut the file
                # back to its last intact record, otherwise every record
                # appended from here on would sit behind a bad one and
                # be unreachable to read_records() at the next recovery.
                with open(self.path, "r+b") as writable:
                    writable.truncate(valid_end)
                    writable.flush()
                    os.fsync(writable.fileno())
        self._handle: IO[bytes] = open(self.path, "ab")
        if fresh:
            self._handle.write(_MAGIC + _HEADER.pack(self.n_sectors, self.n_kpis))
            self._flush()
        self.appended = 0

    def _scan_valid_end(self, handle: IO[bytes]) -> int:
        """Byte offset just past the last intact record in *handle*.

        *handle* must be positioned at the first record (right after the
        header).  Anything beyond the returned offset failed a length or
        CRC check and is unusable.
        """
        end = handle.tell()
        while True:
            record_head = handle.read(_RECORD_HEAD.size)
            if len(record_head) < _RECORD_HEAD.size:
                return end
            _, payload_len = _RECORD_HEAD.unpack(record_head)
            if payload_len != self._payload_len:
                return end
            payload = handle.read(payload_len)
            crc_bytes = handle.read(_CRC.size)
            if len(payload) < payload_len or len(crc_bytes) < _CRC.size:
                return end
            if zlib.crc32(payload) != _CRC.unpack(crc_bytes)[0]:
                return end
            end = handle.tell()

    def _check_header(self, handle: IO[bytes]) -> None:
        head = handle.read(len(_MAGIC) + _HEADER.size)
        if len(head) < len(_MAGIC) + _HEADER.size or head[: len(_MAGIC)] != _MAGIC:
            raise ValueError(f"'{self.path}' is not a tick journal")
        n, l = _HEADER.unpack(head[len(_MAGIC):])
        if (n, l) != (self.n_sectors, self.n_kpis):
            raise ValueError(
                f"journal '{self.path}' is for ({n} sectors, {l} KPIs), "
                f"expected ({self.n_sectors}, {self.n_kpis})"
            )

    def _flush(self) -> None:
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    def append(
        self,
        hour: int,
        values: np.ndarray,
        missing: np.ndarray,
        calendar_row: np.ndarray,
    ) -> None:
        """Durably record one accepted tick."""
        payload = (
            np.ascontiguousarray(values, dtype=np.float64).tobytes()
            + np.ascontiguousarray(missing, dtype=np.uint8).tobytes()
            + np.ascontiguousarray(calendar_row, dtype=np.float64).tobytes()
        )
        if len(payload) != self._payload_len:
            raise ValueError(
                f"payload is {len(payload)} bytes, journal expects {self._payload_len}"
            )
        self._handle.write(_RECORD_HEAD.pack(hour, len(payload)))
        self._handle.write(payload)
        self._handle.write(_CRC.pack(zlib.crc32(payload)))
        self._flush()
        self.appended += 1

    def append_block(
        self,
        first_hour: int,
        values: np.ndarray,
        missing: np.ndarray,
        calendar_rows: np.ndarray,
    ) -> None:
        """Durably record a micro-batch of consecutive accepted ticks.

        Writes one standard per-hour record per block column — the
        on-disk format is byte-identical to calling :meth:`append` once
        per hour — but buffers the records and flushes (and optionally
        fsyncs) once for the whole block.  A crash mid-write tears the
        tail record exactly as with single appends; replay recovers
        every fully written hour.
        """
        values = np.ascontiguousarray(values, dtype=np.float64)
        missing = np.ascontiguousarray(missing, dtype=np.uint8)
        calendar_rows = np.ascontiguousarray(calendar_rows, dtype=np.float64)
        n_hours = values.shape[1]
        chunks: list[bytes] = []
        for j in range(n_hours):
            payload = (
                np.ascontiguousarray(values[:, j, :]).tobytes()
                + np.ascontiguousarray(missing[:, j, :]).tobytes()
                + calendar_rows[j].tobytes()
            )
            if len(payload) != self._payload_len:
                raise ValueError(
                    f"payload is {len(payload)} bytes, journal expects "
                    f"{self._payload_len}"
                )
            chunks.append(_RECORD_HEAD.pack(first_hour + j, len(payload)))
            chunks.append(payload)
            chunks.append(_CRC.pack(zlib.crc32(payload)))
        self._handle.write(b"".join(chunks))
        self._flush()
        self.appended += n_hours

    def close(self) -> None:
        if not self._handle.closed:
            self._flush()
            self._handle.close()

    def __enter__(self) -> "TickJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------- replay
    @classmethod
    def read_records(
        cls, path: str | Path
    ) -> Iterator[tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(hour, values, missing, calendar)`` per intact record.

        Stops silently at the first truncated or CRC-failing record (the
        torn tail of a crashed writer); earlier records are unaffected.
        """
        path = Path(path)
        with open(path, "rb") as handle:
            head = handle.read(len(_MAGIC) + _HEADER.size)
            if len(head) < len(_MAGIC) + _HEADER.size or head[: len(_MAGIC)] != _MAGIC:
                raise ValueError(f"'{path}' is not a tick journal")
            n, l = _HEADER.unpack(head[len(_MAGIC):])
            while True:
                record_head = handle.read(_RECORD_HEAD.size)
                if len(record_head) < _RECORD_HEAD.size:
                    return  # clean EOF or torn header
                hour, payload_len = _RECORD_HEAD.unpack(record_head)
                payload = handle.read(payload_len)
                crc_bytes = handle.read(_CRC.size)
                if len(payload) < payload_len or len(crc_bytes) < _CRC.size:
                    return  # torn record: crash mid-append
                if zlib.crc32(payload) != _CRC.unpack(crc_bytes)[0]:
                    return  # corrupted tail
                values = np.frombuffer(payload, dtype=np.float64, count=n * l)
                offset = 8 * n * l
                missing = np.frombuffer(
                    payload, dtype=np.uint8, count=n * l, offset=offset
                )
                calendar = np.frombuffer(
                    payload, dtype=np.float64, count=_CALENDAR_WIDTH,
                    offset=offset + n * l,
                )
                yield (
                    int(hour),
                    values.reshape(n, l).copy(),
                    missing.reshape(n, l).astype(bool),
                    calendar.copy(),
                )


class RecoveredState:
    """Result of :meth:`CheckpointManager.recover`."""

    def __init__(
        self, ingestor: StreamIngestor | None, snapshot_hour: int, replayed: int
    ) -> None:
        #: The restored ingestor (None when the directory held nothing).
        self.ingestor = ingestor
        #: ``hours_seen`` of the snapshot the recovery started from (0 =
        #: no snapshot, journal-only replay).
        self.snapshot_hour = snapshot_hour
        #: Journal records replayed on top of the snapshot.
        self.replayed = replayed


class CheckpointManager:
    """Own a checkpoint directory: journal segments plus snapshots.

    Layout::

        <directory>/wal-<start_hour:08d>.log      journal segments
        <directory>/snapshot-<hours:08d>.npz      atomic state snapshots
        <directory>/meta.json                     ingestor construction meta

    Parameters
    ----------
    directory:
        Checkpoint root (created if needed).
    n_sectors, n_kpis:
        Payload shape for the journal.
    snapshot_every:
        Snapshot cadence in accepted hours (default one week).
    keep_snapshots:
        Snapshots retained; older ones are pruned after each snapshot.
    sync:
        Passed to :class:`TickJournal`.
    ingestor_meta:
        Construction parameters of the ingestor being checkpointed (see
        :meth:`construction_meta`); written atomically to ``meta.json``
        so a journal-only recovery (crash before the first snapshot)
        rebuilds an identically configured ingestor.  Supplied
        automatically by :meth:`for_ingestor`.
    """

    def __init__(
        self,
        directory: str | Path,
        n_sectors: int,
        n_kpis: int,
        snapshot_every: int = 168,
        keep_snapshots: int = 2,
        sync: bool = False,
        ingestor_meta: dict | None = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if keep_snapshots < 1:
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_sectors = int(n_sectors)
        self.n_kpis = int(n_kpis)
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots
        self.sync = sync
        self.snapshots_written = 0
        if ingestor_meta is not None:
            self._write_meta(ingestor_meta)
        self._last_snapshot_hour = self._newest_snapshot_hour()
        start = max(self._last_snapshot_hour, self._newest_segment_start())
        self._journal = TickJournal(
            self._segment_path(start), self.n_sectors, self.n_kpis, sync=sync
        )

    @classmethod
    def for_ingestor(
        cls, directory: str | Path, ingestor: StreamIngestor, **kwargs
    ) -> "CheckpointManager":
        kwargs.setdefault("ingestor_meta", cls.construction_meta(ingestor))
        return cls(directory, ingestor.n_sectors, ingestor.n_kpis, **kwargs)

    @staticmethod
    def construction_meta(ingestor: StreamIngestor) -> dict:
        """JSON-able parameters that rebuild an equivalent empty ingestor."""
        return {
            "n_sectors": ingestor.n_sectors,
            "n_kpis": ingestor.n_kpis,
            "w_max": ingestor.w_max,
            "capacity": ingestor.capacity,
            "start_weekday": ingestor.start_weekday,
            "start_hour": ingestor.start_hour,
            "start_day_of_month": ingestor.start_day_of_month,
            "weights": list(ingestor.config.weights),
            "thresholds": list(ingestor.config.thresholds),
            "hotspot_threshold": ingestor.config.hotspot_threshold,
        }

    def _write_meta(self, meta: dict) -> None:
        """Atomically persist *meta* as ``meta.json`` (temp + replace)."""
        write_json_atomic(self.directory / _META_NAME, meta, sync=self.sync)

    # ------------------------------------------------------------- paths
    def state_path(self, name: str) -> Path:
        """Path for an auxiliary state file colocated with the journal.

        The lifecycle controller keeps its promotion state machine
        (``lifecycle.json``, written via
        :func:`repro.data.store.write_json_atomic`) here so that the
        WAL, the snapshots, and the champion/challenger bookkeeping
        recover from the same directory as one consistent unit.
        """
        return self.directory / name

    def _segment_path(self, start_hour: int) -> Path:
        return self.directory / f"wal-{start_hour:08d}.log"

    def _snapshot_path(self, hours_seen: int) -> Path:
        return self.directory / f"snapshot-{hours_seen:08d}.npz"

    def _snapshot_files(self) -> list[Path]:
        return sorted(self.directory.glob("snapshot-*.npz"))

    def _segment_files(self) -> list[Path]:
        return sorted(self.directory.glob("wal-*.log"))

    def _newest_snapshot_hour(self) -> int:
        files = self._snapshot_files()
        return int(files[-1].stem.split("-")[1]) if files else 0

    def _newest_segment_start(self) -> int:
        files = self._segment_files()
        return int(files[-1].stem.split("-")[1]) if files else 0

    # ------------------------------------------------------------ journal
    def record_tick(
        self,
        hour: int,
        values: np.ndarray,
        missing: np.ndarray,
        calendar_row: np.ndarray,
    ) -> None:
        """Journal one applied tick (call before acknowledging it)."""
        self._journal.append(hour, values, missing, calendar_row)

    def record_block(
        self,
        first_hour: int,
        values: np.ndarray,
        missing: np.ndarray,
        calendar_rows: np.ndarray,
    ) -> None:
        """Journal a micro-batch of applied ticks with one flush.

        On-disk bytes are identical to per-hour :meth:`record_tick`
        calls; only the write/flush batching differs.  Call after the
        block is applied and before acknowledging any of its hours.
        """
        self._journal.append_block(first_hour, values, missing, calendar_rows)

    # ----------------------------------------------------------- snapshot
    def snapshot(self, ingestor: StreamIngestor) -> Path:
        """Atomically snapshot *ingestor*, rotate and prune the journal."""
        state = ingestor.state_dict()
        path = self._snapshot_path(ingestor.hours_seen)
        meta_blob = np.frombuffer(
            json.dumps(state["meta"]).encode("utf-8"), dtype=np.uint8
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, meta_json=meta_blob, **state["arrays"])
                if self.sync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.snapshots_written += 1
        self._last_snapshot_hour = ingestor.hours_seen
        self._rotate_journal(ingestor.hours_seen)
        self._prune()
        return path

    def maybe_snapshot(self, ingestor: StreamIngestor) -> Path | None:
        """Snapshot when ``snapshot_every`` hours accrued since the last."""
        if ingestor.hours_seen - self._last_snapshot_hour >= self.snapshot_every:
            return self.snapshot(ingestor)
        return None

    def _rotate_journal(self, start_hour: int) -> None:
        self._journal.close()
        self._journal = TickJournal(
            self._segment_path(start_hour), self.n_sectors, self.n_kpis,
            sync=self.sync,
        )

    def _prune(self) -> None:
        snapshots = self._snapshot_files()
        for stale in snapshots[: -self.keep_snapshots]:
            stale.unlink(missing_ok=True)
        # A segment starting before the oldest *retained* snapshot is
        # fully superseded by it (segments rotate exactly at snapshots).
        kept = self._snapshot_files()
        if kept:
            oldest_kept_hour = int(kept[0].stem.split("-")[1])
            for segment in self._segment_files():
                start = int(segment.stem.split("-")[1])
                if start < oldest_kept_hour and segment != self._journal.path:
                    segment.unlink(missing_ok=True)

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "CheckpointManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        return {
            "snapshots_written": self.snapshots_written,
            "last_snapshot_hour": self._last_snapshot_hour,
            "journal_appends": self._journal.appended,
            "snapshot_every": self.snapshot_every,
        }

    # ----------------------------------------------------------- recovery
    @classmethod
    def recover(
        cls, directory: str | Path, up_to_hour: int | None = None
    ) -> RecoveredState:
        """Rebuild the ingestor recorded under *directory*.

        Loads the newest readable snapshot (corrupt ones are skipped,
        falling back to older snapshots and ultimately to journal-only
        replay from an empty ingestor configured from ``meta.json``),
        then replays every journal record with ``hour >=
        snapshot.hours_seen`` in hour order.

        *up_to_hour* bounds the recovery: snapshots past it are skipped
        and replay stops before applying that hour, so the returned
        ingestor has ``hours_seen <= up_to_hour`` even when the journal
        runs further.  The fleet reshard path uses this to rewind every
        old shard to a common watermark before reassembling sectors.
        """
        directory = Path(directory)
        ingestor: StreamIngestor | None = None
        snapshot_hour = 0
        snapshot_paths = sorted(directory.glob("snapshot-*.npz"), reverse=True)
        if up_to_hour is not None:
            snapshot_paths = [
                path for path in snapshot_paths
                if int(path.stem.split("-")[1]) <= up_to_hour
            ]
        for path in snapshot_paths:
            try:
                with np.load(path) as archive:
                    meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
                    arrays = {
                        name: archive[name]
                        for name in archive.files
                        if name != "meta_json"
                    }
                ingestor = StreamIngestor.from_state(
                    {"meta": meta, "arrays": arrays}
                )
                snapshot_hour = ingestor.hours_seen
                break
            except Exception:  # noqa: BLE001 - skip torn/corrupt snapshots
                continue

        records: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        for segment in sorted(directory.glob("wal-*.log")):
            try:
                records.extend(TickJournal.read_records(segment))
            except ValueError:
                continue  # foreign or headerless file
        records.sort(key=lambda record: record[0])

        replayed = 0
        for hour, values, missing, calendar in records:
            if ingestor is None:
                # Journal-only recovery (crash before the first
                # snapshot): rebuild from the persisted construction
                # meta so anchors/w_max/capacity/score config match the
                # original run; fall back to a shape-derived default
                # only when the meta is absent or unusable.
                ingestor = cls._fresh_ingestor(directory, values.shape)
            if up_to_hour is not None and hour >= up_to_hour:
                break  # caller-bounded recovery (fleet reshard rewind)
            if hour < ingestor.hours_seen:
                continue  # superseded by the snapshot
            if hour > ingestor.hours_seen:
                break  # gap in the journal: nothing after it is replayable
            ingestor.ingest_hour(values, missing, calendar)
            replayed += 1
        return RecoveredState(ingestor, snapshot_hour, replayed)

    @classmethod
    def _fresh_ingestor(
        cls, directory: Path, shape: tuple[int, int]
    ) -> StreamIngestor:
        """Empty ingestor for journal-only replay, shaped like *shape*.

        Prefers the construction parameters persisted in ``meta.json``
        (anchors, ``w_max``, capacity, score config) over defaults; a
        missing, corrupt, or shape-mismatched meta degrades to the
        default configuration rather than failing recovery.
        """
        try:
            meta = json.loads(
                (directory / _META_NAME).read_text(encoding="utf-8")
            )
            if (int(meta["n_sectors"]), int(meta["n_kpis"])) != tuple(shape):
                raise ValueError("meta.json shape does not match the journal")
            return StreamIngestor(
                n_sectors=int(meta["n_sectors"]),
                n_kpis=int(meta["n_kpis"]),
                score_config=ScoreConfig(
                    weights=tuple(float(w) for w in meta["weights"]),
                    thresholds=tuple(float(t) for t in meta["thresholds"]),
                    hotspot_threshold=float(meta["hotspot_threshold"]),
                ),
                w_max=int(meta["w_max"]),
                capacity_hours=int(meta["capacity"]),
                start_weekday=int(meta["start_weekday"]),
                start_hour=int(meta["start_hour"]),
                start_day_of_month=int(meta["start_day_of_month"]),
            )
        except Exception:  # noqa: BLE001 - degrade to defaults, never fail
            return StreamIngestor(n_sectors=shape[0], n_kpis=shape[1])
