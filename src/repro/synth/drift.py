"""Controlled drift injection for lifecycle tests and benchmarks.

:func:`drift_shifted_dataset` builds a dataset whose *event regime*
changes at a known day: two realizations are generated from the **same
seed** — identical geography, load profiles, and missingness process —
but with different :class:`~repro.synth.config.EventConfig` rates, and
the raw KPI tensors are spliced at the shift hour.  Everything before
``shift_day`` is bitwise the base realization; everything after comes
from the shifted regime.

Splicing happens at the raw-tensor level, *before* sector filtering,
imputation, and scoring, so the downstream pipeline sees one coherent
dataset (a single sector set, one imputation pass) whose score and KPI
distributions genuinely move at the shift — exactly what the online
:class:`~repro.lifecycle.drift.DriftMonitor` is built to detect, with
ground truth about when.
"""

from __future__ import annotations

from dataclasses import replace

from repro.data.dataset import Dataset
from repro.data.tensor import HOURS_PER_DAY
from repro.synth.config import EventConfig, GeneratorConfig
from repro.synth.generator import TelemetryGenerator

__all__ = ["drift_shifted_dataset", "intensified_events"]


def intensified_events(events: EventConfig | None = None, factor: float = 4.0) -> EventConfig:
    """An event regime with all episode rates scaled by *factor*.

    The default post-shift regime for drift experiments: more failures,
    storms, and interference episodes (and a stronger storm gain) shift
    the upper tail of the score distribution without touching the
    diurnal load structure.
    """
    base = events or EventConfig()
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    return replace(
        base,
        failure_rate_per_tower_day=base.failure_rate_per_tower_day * factor,
        congestion_storm_rate_per_day=base.congestion_storm_rate_per_day * factor,
        storm_gain=1.0 + (base.storm_gain - 1.0) * min(factor, 2.0),
        interference_rate_per_day=base.interference_rate_per_day * factor,
        onset_rate_per_sector=base.onset_rate_per_sector * min(factor, 3.0),
    )


def drift_shifted_dataset(
    config: GeneratorConfig,
    shift_day: int,
    shifted_events: EventConfig | None = None,
) -> Dataset:
    """A raw dataset whose event regime shifts at *shift_day*.

    Hours ``< shift_day * 24`` are the realization of *config*; hours
    after are the same-seed realization of *config* with
    *shifted_events* (default: :func:`intensified_events` applied to the
    base regime).  Returns the raw (unfiltered, unscored) dataset —
    run the usual ``filter_sectors`` / impute / ``attach_scores``
    pipeline on it.
    """
    n_days = config.n_weeks * 7
    if not 0 < shift_day < n_days:
        raise ValueError(
            f"shift_day must fall inside the dataset (0, {n_days}), got {shift_day}"
        )
    if shifted_events is None:
        shifted_events = intensified_events(config.events)
    base = TelemetryGenerator(config).generate()
    shifted = TelemetryGenerator(replace(config, events=shifted_events)).generate()
    shift_hour = shift_day * HOURS_PER_DAY
    base.kpis.values[:, shift_hour:, :] = shifted.kpis.values[:, shift_hour:, :]
    base.kpis.missing[:, shift_hour:, :] = shifted.kpis.missing[:, shift_hour:, :]
    return base
