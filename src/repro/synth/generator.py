"""The telemetry generator: ties geography, profiles, events, and KPIs together.

:class:`TelemetryGenerator` produces a :class:`repro.data.dataset.Dataset`
holding the KPI tensor ``K`` (with missing mask), the sector geography,
and the enriched calendar ``C``.  Scores and hot spot labels are attached
later by :func:`repro.core.scoring.attach_scores` so that users can plug
in their own scoring configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.chunked import ChunkedDatasetWriter
from repro.data.dataset import Dataset, SectorGeography
from repro.data.tensor import HOURS_PER_WEEK, KPITensor, TimeAxis
from repro.synth.calendar_info import CalendarConfig, build_calendar
from repro.synth.config import GeneratorConfig
from repro.synth.events import EventIntensities, EventPlan, EventSimulator, plan_events
from repro.synth.geography import NetworkGeographyBuilder
from repro.synth.kpis import KPI_NAMES, KPICatalog, LatentState
from repro.synth.missing import MissingnessPlan, inject_missingness, plan_missingness
from repro.synth.profiles import LoadProfileLibrary

__all__ = ["TelemetryGenerator", "WorldChunk", "generate_dataset"]

# Per-week child-stream tags of the streaming path (the load and KPI
# components each own a child seed; tags separate their sub-streams).
_LOAD_STATIC_STREAM = 0
_LOAD_NOISE_STREAM = 1
_KPI_NOISE_STREAM = 0


@dataclass(frozen=True)
class WorldChunk:
    """One streamed slab of a synthetic world.

    ``values``/``missing`` are sector-major ``(n_sectors, chunk_hours,
    n_kpis)``; values at missing positions are already NaN.
    """

    first_hour: int
    values: np.ndarray
    missing: np.ndarray


@dataclass(frozen=True)
class _StreamPlan:
    """Everything the streaming render phase needs, at O(sectors * days).

    ``class_profiles`` is ``(n_land_use_classes, n_hours)`` — the shared
    hourly shape per land-use class; ``class_index`` maps each sector to
    its row.  ``base``/``drift`` are the static per-sector load factors;
    the event and missingness plans carry the cross-week structure.
    """

    geography: SectorGeography
    time_axis: TimeAxis
    calendar: np.ndarray
    class_profiles: np.ndarray
    class_index: np.ndarray
    base: np.ndarray
    drift: np.ndarray
    seed_load: int
    events: "EventPlan"
    missingness: "MissingnessPlan"


class TelemetryGenerator:
    """Generate a synthetic telemetry data set.

    Parameters
    ----------
    config:
        Generator configuration; see :class:`repro.synth.config.GeneratorConfig`.
    calendar_config:
        Optional calendar override (holidays, month alignment).

    Examples
    --------
    >>> from repro.synth import GeneratorConfig, TelemetryGenerator
    >>> dataset = TelemetryGenerator(GeneratorConfig(n_towers=10, n_weeks=4)).generate()
    >>> dataset.kpis.shape
    (30, 672, 21)
    """

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        calendar_config: CalendarConfig | None = None,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.calendar_config = calendar_config or CalendarConfig()
        self._profiles = LoadProfileLibrary()

    def generate(self, with_missing: bool = True) -> Dataset:
        """Produce a full dataset.

        Parameters
        ----------
        with_missing:
            If False, skip missingness injection (useful for tests and
            for the imputation benchmarks, which inject their own).
        """
        config = self.config
        rng_geo, rng_events, rng_load, rng_kpi, rng_missing = self._child_rngs()

        geography = NetworkGeographyBuilder(config, rng_geo).build()
        time_axis = TimeAxis(n_hours=config.n_hours, start_weekday=0, start_hour=0)
        calendar = build_calendar(time_axis, self.calendar_config)

        load, base = self._simulate_load(geography, time_axis, calendar, rng_load)
        events = EventSimulator(config.events, rng_events).simulate(
            geography.tower_ids, config.n_hours,
            onset_weights=self._onset_weights(base),
        )
        state = LatentState(
            load=load,
            failure=events.failure,
            surge=events.surge,
            interference=events.interference,
            degradation=events.degradation,
            precursor=events.precursor,
        )
        values = KPICatalog(rng_kpi).observe(state)

        if with_missing:
            missing = inject_missingness(values.shape, config.missingness, rng_missing)
            values = values.copy()
            values[missing] = np.nan
        else:
            missing = np.zeros(values.shape, dtype=bool)

        tensor = KPITensor(
            values=values,
            missing=missing,
            kpi_names=list(KPI_NAMES),
            time_axis=time_axis,
        )
        return Dataset(kpis=tensor, geography=geography, calendar=calendar)

    def _child_seeds(self) -> np.ndarray:
        """The five component seeds derived from the config seed.

        Order: geography, events, load, KPI noise, missingness.  This is
        the *single* derivation point for both :meth:`generate` and
        :meth:`latent_events` (and the seeds the streaming path keys its
        per-week child streams on) — keeping ground-truth event replays
        bitwise in sync with the generated dataset.
        """
        root = np.random.default_rng(self.config.seed)
        return root.integers(0, 2**63, size=5)

    def _child_rngs(self) -> tuple[np.random.Generator, ...]:
        """Independent per-component generators from :meth:`_child_seeds`.

        Each component's draws stay stable when another component's are
        modified.
        """
        return tuple(np.random.default_rng(seed) for seed in self._child_seeds())

    def latent_events(self) -> EventIntensities:
        """Re-simulate and return the latent event intensities.

        Deterministic for a given config seed; used by tests and by
        benches that need ground-truth onsets.  Uses the same
        :meth:`_child_rngs` derivation as :meth:`generate`, so the
        returned events are exactly those embedded in the generated
        dataset.
        """
        config = self.config
        rng_geo, rng_events, rng_load, _, _ = self._child_rngs()
        geography = NetworkGeographyBuilder(config, rng_geo).build()
        time_axis = TimeAxis(n_hours=config.n_hours, start_weekday=0, start_hour=0)
        calendar = build_calendar(time_axis, self.calendar_config)
        __, base = self._simulate_load(geography, time_axis, calendar, rng_load)
        return EventSimulator(config.events, rng_events).simulate(
            geography.tower_ids, config.n_hours,
            onset_weights=self._onset_weights(base),
        )

    # ------------------------------------------------------------------
    # Streaming path: paper-scale worlds, one chunk at a time.
    #
    # generate() materialises O(n_sectors * n_hours) for every latent
    # component at once — fine for laptop worlds, impossible for the
    # paper's regime (10k+ sectors x 18 weeks).  The streaming path
    # splits generation into a *plan* phase (geography, calendar, base
    # loads, and the day/event-granular event + missingness plans —
    # everything that crosses week boundaries, at O(n_sectors * n_days))
    # and a *render* phase that emits hourly week-chunks.  Every random
    # stream is keyed per (component seed, tag, week), so the world is a
    # pure function of the config seed, bitwise-independent of
    # chunk_weeks, process, and platform.  It is a different (equally
    # valid) realization than generate() produces for the same seed —
    # the batch path draws its streams in a different order and is kept
    # unchanged so existing seeds and benchmarks stay stable.
    # ------------------------------------------------------------------

    def stream(
        self, chunk_weeks: int = 1, with_missing: bool = True
    ) -> Iterator[WorldChunk]:
        """Yield the world as consecutive ``chunk_weeks``-week slabs.

        Peak memory is O(one chunk) plus the day-granular plans; the
        emitted telemetry is identical for every ``chunk_weeks``.
        """
        if chunk_weeks <= 0:
            raise ValueError(f"chunk_weeks must be positive, got {chunk_weeks}")
        config = self.config
        plan = self._plan_stream()
        n_kpis = len(KPI_NAMES)
        seed_kpi = int(self._child_seeds()[3])

        for first_week in range(0, config.n_weeks, chunk_weeks):
            weeks = range(first_week, min(first_week + chunk_weeks, config.n_weeks))
            parts_values = []
            parts_missing = []
            for week in weeks:
                lo = week * HOURS_PER_WEEK
                hi = lo + HOURS_PER_WEEK
                load = self._render_load_week(plan, week)
                events = plan.events.render(lo, hi)
                state = LatentState(
                    load=load,
                    failure=events.failure,
                    surge=events.surge,
                    interference=events.interference,
                    degradation=events.degradation,
                    precursor=events.precursor,
                )
                rng_kpi = np.random.default_rng([seed_kpi, _KPI_NOISE_STREAM, week])
                values = KPICatalog(rng_kpi).observe(state)
                if with_missing:
                    missing = plan.missingness.render(lo, hi, n_kpis)
                    values[missing] = np.nan
                else:
                    missing = np.zeros(values.shape, dtype=bool)
                parts_values.append(values)
                parts_missing.append(missing)
            yield WorldChunk(
                first_hour=weeks[0] * HOURS_PER_WEEK,
                values=(
                    parts_values[0]
                    if len(parts_values) == 1
                    else np.concatenate(parts_values, axis=1)
                ),
                missing=(
                    parts_missing[0]
                    if len(parts_missing) == 1
                    else np.concatenate(parts_missing, axis=1)
                ),
            )

    def generate_streamed(
        self, with_missing: bool = True, chunk_weeks: int = 1
    ) -> Dataset:
        """Assemble the streamed world into an in-RAM :class:`Dataset`.

        Bitwise-equal to writing the stream chunked and re-opening it;
        used by tests and by small tiers.  For paper-scale worlds use
        :meth:`generate_chunked` instead.
        """
        plan = self._plan_stream()
        chunks = list(self.stream(chunk_weeks=chunk_weeks, with_missing=with_missing))
        values = np.concatenate([chunk.values for chunk in chunks], axis=1)
        missing = np.concatenate([chunk.missing for chunk in chunks], axis=1)
        tensor = KPITensor(
            values=values,
            missing=missing,
            kpi_names=list(KPI_NAMES),
            time_axis=plan.time_axis,
        )
        return Dataset(kpis=tensor, geography=plan.geography, calendar=plan.calendar)

    def generate_chunked(
        self,
        root: str | Path,
        chunk_weeks: int = 1,
        with_missing: bool = True,
        generator_meta: dict | None = None,
    ) -> tuple[Path, dict]:
        """Stream the world straight into a chunked store at *root*.

        Never holds more than one chunk of telemetry in RAM.  Returns
        ``(root, manifest)``; the manifest's ``content_hash`` is the
        deterministic identity of the world (same for any
        *chunk_weeks*).
        """
        config = self.config
        plan = self._plan_stream()
        meta = {
            "seed": config.seed,
            "n_towers": config.n_towers,
            "n_weeks": config.n_weeks,
            "sectors_per_tower": config.sectors_per_tower,
            "with_missing": bool(with_missing),
        }
        if generator_meta:
            meta.update(generator_meta)
        writer = ChunkedDatasetWriter(
            root,
            n_sectors=config.n_sectors,
            n_hours=config.n_hours,
            kpi_names=list(KPI_NAMES),
            geography=plan.geography,
            calendar=plan.calendar,
            start_weekday=plan.time_axis.start_weekday,
            start_hour=plan.time_axis.start_hour,
            chunk_hours=chunk_weeks * HOURS_PER_WEEK,
            generator_meta=meta,
        )
        for chunk in self.stream(chunk_weeks=chunk_weeks, with_missing=with_missing):
            writer.append(chunk.values, chunk.missing)
        manifest = writer.finalize()
        return Path(root), manifest

    def _plan_stream(self) -> "_StreamPlan":
        """Plan phase: everything that must exist before any chunk renders."""
        config = self.config
        seeds = self._child_seeds()
        seed_geo, seed_events, seed_load = (int(s) for s in seeds[:3])
        seed_missing = int(seeds[4])

        # Geography reuses the batch child stream directly (it is small
        # and drawn in one shot), so streamed worlds share generate()'s
        # geography for the same seed.
        geography = NetworkGeographyBuilder(
            config, np.random.default_rng(seed_geo)
        ).build()
        time_axis = TimeAxis(n_hours=config.n_hours, start_weekday=0, start_hour=0)
        calendar = build_calendar(time_axis, self.calendar_config)

        hour_of_day = calendar[:, 0].astype(np.int64)
        day_of_week = calendar[:, 1].astype(np.int64)
        holiday = calendar[:, 4].astype(bool)
        classes = np.unique(geography.land_use)
        class_profiles = np.stack(
            [
                self._profiles.hourly_load(land_use, hour_of_day, day_of_week, holiday)
                for land_use in classes
            ]
        )
        class_index = np.searchsorted(classes, geography.land_use)

        # Static load draws (same formulas as _simulate_load, from the
        # load component's static child stream).
        rng = np.random.default_rng([seed_load, _LOAD_STATIC_STREAM])
        n_sectors = geography.n_sectors
        tower_base = rng.lognormal(mean=0.0, sigma=0.30, size=config.n_towers)
        sector_factor = rng.lognormal(mean=0.0, sigma=0.12, size=n_sectors)
        base = 0.62 * np.repeat(tower_base, config.sectors_per_tower) * sector_factor
        n_chronic_towers = int(round(config.chronic_hot_fraction * config.n_towers))
        if n_chronic_towers > 0:
            chronic_towers = rng.choice(
                config.n_towers, size=n_chronic_towers, replace=False
            )
            chronic = np.isin(geography.tower_ids, chronic_towers)
            base[chronic] = rng.uniform(1.4, 2.0, size=int(chronic.sum()))
        weekly_drift = rng.normal(
            loc=0.0, scale=0.04, size=(n_sectors, config.n_weeks)
        )
        drift = np.exp(np.cumsum(weekly_drift, axis=1))

        events = plan_events(
            config.events,
            seed_events,
            geography.tower_ids,
            config.n_hours,
            onset_weights=self._onset_weights(base),
        )
        missingness = plan_missingness(
            config.missingness, seed_missing, n_sectors, config.n_hours
        )
        return _StreamPlan(
            geography=geography,
            time_axis=time_axis,
            calendar=calendar,
            class_profiles=class_profiles,
            class_index=class_index,
            base=base,
            drift=drift,
            seed_load=seed_load,
            events=events,
            missingness=missingness,
        )

    def _render_load_week(self, plan: "_StreamPlan", week: int) -> np.ndarray:
        """Hourly latent load for one week from the plan + weekly noise."""
        lo = week * HOURS_PER_WEEK
        hi = lo + HOURS_PER_WEEK
        profiles = plan.class_profiles[:, lo:hi][plan.class_index]
        rng = np.random.default_rng([plan.seed_load, _LOAD_NOISE_STREAM, week])
        noise = rng.normal(loc=1.0, scale=0.06, size=profiles.shape)
        load = (
            plan.base[:, None]
            * profiles
            * plan.drift[:, week][:, None]
            * np.clip(noise, 0.5, 1.5)
        )
        return np.clip(load, 0.0, None)

    @staticmethod
    def _onset_weights(base: np.ndarray) -> np.ndarray:
        """Per-sector onset-probability multipliers from the base load.

        Heavily loaded equipment degrades more often, so persistent
        degradations preferentially hit busy sectors.  Normalised to a
        mean of 1 so the configured onset rate stays the network-wide
        expectation.
        """
        weights = np.clip(base / 0.62, 0.2, 3.0) ** 1.5
        return weights / weights.mean()

    # ------------------------------------------------------------------
    def _simulate_load(
        self,
        geography: SectorGeography,
        time_axis: TimeAxis,
        calendar: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Latent relative load per sector and hour, plus base factors.

        Load = per-sector base level x land-use profile x slow weekly
        drift x fast noise.  Base levels are spread so that a small
        population of chronically tight sectors exists
        (``chronic_hot_fraction``), reproducing the always-hot sectors
        of paper Figs. 3 and 6C.
        """
        config = self.config
        n_sectors = geography.n_sectors
        hour_of_day = calendar[:, 0].astype(np.int64)
        day_of_week = calendar[:, 1].astype(np.int64)
        holiday = calendar[:, 4].astype(bool)

        profile_by_class = {
            land_use: self._profiles.hourly_load(land_use, hour_of_day, day_of_week, holiday)
            for land_use in np.unique(geography.land_use)
        }
        profiles = np.stack(
            [profile_by_class[land_use] for land_use in geography.land_use]
        )

        # Base load factors: a tower-level demand component shared by the
        # tower's sectors times a smaller per-sector factor.  The shared
        # component correlates same-tower hot spot behaviour (paper
        # Fig. 8's distance-0 bucket) on top of the shared failures; the
        # overall spread produces a continuum of borderline sectors that
        # cross capacity only on their land-use class's busiest days (the
        # source of the weekly hot spot patterns).  A chronic tail is
        # pushed well above capacity (always-hot population of paper
        # Figs. 3/6C).
        tower_base = rng.lognormal(mean=0.0, sigma=0.30, size=config.n_towers)
        sector_factor = rng.lognormal(mean=0.0, sigma=0.12, size=n_sectors)
        base = 0.62 * np.repeat(tower_base, config.sectors_per_tower) * sector_factor
        # Chronic capacity shortfall is a *site* property: an
        # under-provisioned tower starves all of its sectors, which is
        # one of the mechanisms behind the paper's same-tower label
        # correlations (Fig. 8, distance 0).
        n_chronic_towers = int(round(config.chronic_hot_fraction * config.n_towers))
        if n_chronic_towers > 0:
            chronic_towers = rng.choice(
                config.n_towers, size=n_chronic_towers, replace=False
            )
            chronic = np.isin(geography.tower_ids, chronic_towers)
            base[chronic] = rng.uniform(1.4, 2.0, size=int(chronic.sum()))

        # Slow multiplicative drift week over week (seasonality, growth).
        weekly_drift = rng.normal(loc=0.0, scale=0.04, size=(n_sectors, config.n_weeks))
        drift = np.exp(np.cumsum(weekly_drift, axis=1))
        drift_hourly = np.repeat(drift, 168, axis=1)[:, : config.n_hours]

        noise = rng.normal(loc=1.0, scale=0.06, size=(n_sectors, config.n_hours))
        load = base[:, None] * profiles * drift_hourly * np.clip(noise, 0.5, 1.5)
        return np.clip(load, 0.0, None), base


def generate_dataset(
    config: GeneratorConfig | None = None, with_missing: bool = True
) -> Dataset:
    """One-call convenience wrapper around :class:`TelemetryGenerator`."""
    return TelemetryGenerator(config).generate(with_missing=with_missing)
