"""The telemetry generator: ties geography, profiles, events, and KPIs together.

:class:`TelemetryGenerator` produces a :class:`repro.data.dataset.Dataset`
holding the KPI tensor ``K`` (with missing mask), the sector geography,
and the enriched calendar ``C``.  Scores and hot spot labels are attached
later by :func:`repro.core.scoring.attach_scores` so that users can plug
in their own scoring configuration.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset, SectorGeography
from repro.data.tensor import KPITensor, TimeAxis
from repro.synth.calendar_info import CalendarConfig, build_calendar
from repro.synth.config import GeneratorConfig
from repro.synth.events import EventIntensities, EventSimulator
from repro.synth.geography import NetworkGeographyBuilder
from repro.synth.kpis import KPI_NAMES, KPICatalog, LatentState
from repro.synth.missing import inject_missingness
from repro.synth.profiles import LoadProfileLibrary

__all__ = ["TelemetryGenerator", "generate_dataset"]


class TelemetryGenerator:
    """Generate a synthetic telemetry data set.

    Parameters
    ----------
    config:
        Generator configuration; see :class:`repro.synth.config.GeneratorConfig`.
    calendar_config:
        Optional calendar override (holidays, month alignment).

    Examples
    --------
    >>> from repro.synth import GeneratorConfig, TelemetryGenerator
    >>> dataset = TelemetryGenerator(GeneratorConfig(n_towers=10, n_weeks=4)).generate()
    >>> dataset.kpis.shape
    (30, 672, 21)
    """

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        calendar_config: CalendarConfig | None = None,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.calendar_config = calendar_config or CalendarConfig()
        self._profiles = LoadProfileLibrary()

    def generate(self, with_missing: bool = True) -> Dataset:
        """Produce a full dataset.

        Parameters
        ----------
        with_missing:
            If False, skip missingness injection (useful for tests and
            for the imputation benchmarks, which inject their own).
        """
        config = self.config
        root = np.random.default_rng(config.seed)
        # Independent child generators: each component's draws stay
        # stable when another component's are modified.
        rng_geo, rng_events, rng_load, rng_kpi, rng_missing = (
            np.random.default_rng(seed) for seed in root.integers(0, 2**63, size=5)
        )

        geography = NetworkGeographyBuilder(config, rng_geo).build()
        time_axis = TimeAxis(n_hours=config.n_hours, start_weekday=0, start_hour=0)
        calendar = build_calendar(time_axis, self.calendar_config)

        load, base = self._simulate_load(geography, time_axis, calendar, rng_load)
        events = EventSimulator(config.events, rng_events).simulate(
            geography.tower_ids, config.n_hours,
            onset_weights=self._onset_weights(base),
        )
        state = LatentState(
            load=load,
            failure=events.failure,
            surge=events.surge,
            interference=events.interference,
            degradation=events.degradation,
            precursor=events.precursor,
        )
        values = KPICatalog(rng_kpi).observe(state)

        if with_missing:
            missing = inject_missingness(values.shape, config.missingness, rng_missing)
            values = values.copy()
            values[missing] = np.nan
        else:
            missing = np.zeros(values.shape, dtype=bool)

        tensor = KPITensor(
            values=values,
            missing=missing,
            kpi_names=list(KPI_NAMES),
            time_axis=time_axis,
        )
        return Dataset(kpis=tensor, geography=geography, calendar=calendar)

    def latent_events(self) -> EventIntensities:
        """Re-simulate and return the latent event intensities.

        Deterministic for a given config seed; used by tests and by
        benches that need ground-truth onsets.
        """
        config = self.config
        root = np.random.default_rng(config.seed)
        seeds = root.integers(0, 2**63, size=5)
        rng_geo = np.random.default_rng(seeds[0])
        rng_events = np.random.default_rng(seeds[1])
        rng_load = np.random.default_rng(seeds[2])
        geography = NetworkGeographyBuilder(config, rng_geo).build()
        time_axis = TimeAxis(n_hours=config.n_hours, start_weekday=0, start_hour=0)
        calendar = build_calendar(time_axis, self.calendar_config)
        __, base = self._simulate_load(geography, time_axis, calendar, rng_load)
        return EventSimulator(config.events, rng_events).simulate(
            geography.tower_ids, config.n_hours,
            onset_weights=self._onset_weights(base),
        )

    @staticmethod
    def _onset_weights(base: np.ndarray) -> np.ndarray:
        """Per-sector onset-probability multipliers from the base load.

        Heavily loaded equipment degrades more often, so persistent
        degradations preferentially hit busy sectors.  Normalised to a
        mean of 1 so the configured onset rate stays the network-wide
        expectation.
        """
        weights = np.clip(base / 0.62, 0.2, 3.0) ** 1.5
        return weights / weights.mean()

    # ------------------------------------------------------------------
    def _simulate_load(
        self,
        geography: SectorGeography,
        time_axis: TimeAxis,
        calendar: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Latent relative load per sector and hour, plus base factors.

        Load = per-sector base level x land-use profile x slow weekly
        drift x fast noise.  Base levels are spread so that a small
        population of chronically tight sectors exists
        (``chronic_hot_fraction``), reproducing the always-hot sectors
        of paper Figs. 3 and 6C.
        """
        config = self.config
        n_sectors = geography.n_sectors
        hour_of_day = calendar[:, 0].astype(np.int64)
        day_of_week = calendar[:, 1].astype(np.int64)
        holiday = calendar[:, 4].astype(bool)

        profile_by_class = {
            land_use: self._profiles.hourly_load(land_use, hour_of_day, day_of_week, holiday)
            for land_use in np.unique(geography.land_use)
        }
        profiles = np.stack(
            [profile_by_class[land_use] for land_use in geography.land_use]
        )

        # Base load factors: a tower-level demand component shared by the
        # tower's sectors times a smaller per-sector factor.  The shared
        # component correlates same-tower hot spot behaviour (paper
        # Fig. 8's distance-0 bucket) on top of the shared failures; the
        # overall spread produces a continuum of borderline sectors that
        # cross capacity only on their land-use class's busiest days (the
        # source of the weekly hot spot patterns).  A chronic tail is
        # pushed well above capacity (always-hot population of paper
        # Figs. 3/6C).
        tower_base = rng.lognormal(mean=0.0, sigma=0.30, size=config.n_towers)
        sector_factor = rng.lognormal(mean=0.0, sigma=0.12, size=n_sectors)
        base = 0.62 * np.repeat(tower_base, config.sectors_per_tower) * sector_factor
        # Chronic capacity shortfall is a *site* property: an
        # under-provisioned tower starves all of its sectors, which is
        # one of the mechanisms behind the paper's same-tower label
        # correlations (Fig. 8, distance 0).
        n_chronic_towers = int(round(config.chronic_hot_fraction * config.n_towers))
        if n_chronic_towers > 0:
            chronic_towers = rng.choice(
                config.n_towers, size=n_chronic_towers, replace=False
            )
            chronic = np.isin(geography.tower_ids, chronic_towers)
            base[chronic] = rng.uniform(1.4, 2.0, size=int(chronic.sum()))

        # Slow multiplicative drift week over week (seasonality, growth).
        weekly_drift = rng.normal(loc=0.0, scale=0.04, size=(n_sectors, config.n_weeks))
        drift = np.exp(np.cumsum(weekly_drift, axis=1))
        drift_hourly = np.repeat(drift, 168, axis=1)[:, : config.n_hours]

        noise = rng.normal(loc=1.0, scale=0.06, size=(n_sectors, config.n_hours))
        load = base[:, None] * profiles * drift_hourly * np.clip(noise, 0.5, 1.5)
        return np.clip(load, 0.0, None), base


def generate_dataset(
    config: GeneratorConfig | None = None, with_missing: bool = True
) -> Dataset:
    """One-call convenience wrapper around :class:`TelemetryGenerator`."""
    return TelemetryGenerator(config).generate(with_missing=with_missing)
