"""Non-regular event processes.

The generator layers four stochastic event processes on top of the
regular land-use load profiles.  Each process produces an hourly latent
intensity per sector; the KPI catalog then maps latent states to
indicator channels.

* **Hardware failures** strike a whole tower for a heavy-tailed number
  of hours, degrading accessibility/retainability KPIs of every sector
  on the tower.  Shared failures are what correlate same-tower label
  series (paper Fig. 8, distance-0 bucket).
* **Congestion storms** are one-day demand surges on a single sector
  (paper Fig. 1B: shopping-day spike near a commercial area).
* **Interference episodes** raise noise KPIs for a few days.
* **Emerging persistent degradations** ("onsets") turn a sector into a
  persistent hot spot for one or more weeks, preceded by a multi-day
  precursor ramp in usage/congestion intensity.  The ramp is the causal
  signal behind the paper's key result: tree models forecasting
  "become a hot spot" beat score-only baselines by >100 % at moderate
  horizons, an advantage that vanishes once the horizon exceeds the
  ramp's reach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tensor import HOURS_PER_DAY, HOURS_PER_WEEK
from repro.synth.config import EventConfig

__all__ = ["EventIntensities", "EventSimulator", "EventPlan", "plan_events"]


@dataclass(frozen=True)
class EventIntensities:
    """Hourly latent intensities produced by the event processes.

    All arrays have shape ``(n_sectors, n_hours)`` with values in
    ``[0, ~1.5]``; 0 means "no event active".

    Attributes
    ----------
    failure:
        Hardware-fault severity (affects accessibility, retainability,
        availability and setup-failure KPIs, and the hot spot score).
    surge:
        Demand-surge multiplier *excess* (0 = normal demand; 1 = demand
        roughly doubled).
    interference:
        External interference level (affects noise KPIs).
    degradation:
        Persistent-degradation severity after an onset (1 while the
        sector is in its degraded period).
    precursor:
        Precursor ramp intensity rising linearly from 0 to 1 over the
        configured number of days *before* each onset.  Feeds only the
        usage/congestion KPIs; the raw KPI columns see it from the first
        ramp day, while the score only reacts in the final ramp days
        (when the ramp gets strong enough to trip the usage thresholds),
        so score-only baselines see a much shorter warning.
    onset_days:
        Boolean matrix ``(n_sectors, n_days)``; True on the first day of
        each degraded period (ground-truth onsets, useful for tests).
    """

    failure: np.ndarray
    surge: np.ndarray
    interference: np.ndarray
    degradation: np.ndarray
    precursor: np.ndarray
    onset_days: np.ndarray


class EventSimulator:
    """Simulate all non-regular event processes for a network.

    Parameters
    ----------
    config:
        Event rates and magnitudes.
    rng:
        Dedicated random generator.
    """

    def __init__(self, config: EventConfig, rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng

    def simulate(
        self,
        tower_ids: np.ndarray,
        n_hours: int,
        onset_weights: np.ndarray | None = None,
    ) -> EventIntensities:
        """Run every event process.

        Parameters
        ----------
        tower_ids:
            Tower id per sector; failures are drawn per tower and
            broadcast to its sectors.
        n_hours:
            Number of hourly samples (must be a multiple of 24).
        onset_weights:
            Optional per-sector multipliers on the onset probability
            (mean ~1).  The generator passes load-derived weights so
            that persistent degradations preferentially hit heavily
            loaded equipment — which is what correlates pre-transition
            scores with future transitions, as the paper observes.
        """
        if n_hours % HOURS_PER_DAY != 0:
            raise ValueError(f"n_hours must be a multiple of 24, got {n_hours}")
        tower_ids = np.asarray(tower_ids, dtype=np.int64)
        n_sectors = tower_ids.size
        n_days = n_hours // HOURS_PER_DAY
        if onset_weights is not None:
            onset_weights = np.asarray(onset_weights, dtype=np.float64)
            if onset_weights.shape != (n_sectors,):
                raise ValueError(
                    f"onset_weights must be ({n_sectors},), got {onset_weights.shape}"
                )

        failure = self._simulate_failures(tower_ids, n_hours)
        surge = self._simulate_storms(n_sectors, n_days, n_hours)
        interference = self._simulate_interference(n_sectors, n_days, n_hours)
        degradation, precursor, onset_days = self._simulate_onsets(
            n_sectors, n_days, n_hours, onset_weights
        )
        return EventIntensities(
            failure=failure,
            surge=surge,
            interference=interference,
            degradation=degradation,
            precursor=precursor,
            onset_days=onset_days,
        )

    # ------------------------------------------------------------ failures
    def _simulate_failures(self, tower_ids: np.ndarray, n_hours: int) -> np.ndarray:
        config = self._config
        rng = self._rng
        n_towers = int(tower_ids.max()) + 1 if tower_ids.size else 0
        n_days = n_hours // HOURS_PER_DAY
        tower_failure = np.zeros((n_towers, n_hours), dtype=np.float64)
        hourly_start_prob = config.failure_rate_per_tower_day / HOURS_PER_DAY
        starts = rng.random((n_towers, n_hours)) < hourly_start_prob
        duration_p = 1.0 / max(config.failure_duration_mean_hours, 1.0)
        for tower, hour in zip(*np.nonzero(starts)):
            duration = int(rng.geometric(duration_p))
            severity = rng.uniform(0.7, 1.3)
            tower_failure[tower, hour : hour + duration] = np.maximum(
                tower_failure[tower, hour : hour + duration], severity
            )
        del n_days
        return tower_failure[tower_ids]

    # -------------------------------------------------------------- storms
    def _simulate_storms(self, n_sectors: int, n_days: int, n_hours: int) -> np.ndarray:
        config = self._config
        rng = self._rng
        surge = np.zeros((n_sectors, n_hours), dtype=np.float64)
        storm_days = rng.random((n_sectors, n_days)) < config.congestion_storm_rate_per_day
        # A storm is an afternoon-centred bump lasting most of the day.
        hours = np.arange(HOURS_PER_DAY, dtype=np.float64)
        for sector, day in zip(*np.nonzero(storm_days)):
            centre = rng.uniform(12.0, 20.0)
            width = rng.uniform(2.0, 4.0)
            gain = (config.storm_gain - 1.0) * rng.uniform(0.6, 1.4)
            bump = gain * np.exp(-0.5 * ((hours - centre) / width) ** 2)
            lo = day * HOURS_PER_DAY
            surge[sector, lo : lo + HOURS_PER_DAY] += bump
        return surge

    # -------------------------------------------------------- interference
    def _simulate_interference(
        self, n_sectors: int, n_days: int, n_hours: int
    ) -> np.ndarray:
        config = self._config
        rng = self._rng
        interference = np.zeros((n_sectors, n_hours), dtype=np.float64)
        starts = rng.random((n_sectors, n_days)) < config.interference_rate_per_day
        duration_p = 1.0 / max(config.interference_duration_mean_days, 1.0)
        for sector, day in zip(*np.nonzero(starts)):
            duration_days = int(rng.geometric(duration_p))
            level = rng.uniform(0.5, 1.2)
            lo = day * HOURS_PER_DAY
            hi = min((day + duration_days) * HOURS_PER_DAY, n_hours)
            interference[sector, lo:hi] = np.maximum(interference[sector, lo:hi], level)
        return interference

    # --------------------------------------------------------------- onsets
    def _simulate_onsets(
        self,
        n_sectors: int,
        n_days: int,
        n_hours: int,
        onset_weights: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        config = self._config
        rng = self._rng
        degradation = np.zeros((n_sectors, n_hours), dtype=np.float64)
        precursor = np.zeros((n_sectors, n_hours), dtype=np.float64)
        onset_days = np.zeros((n_sectors, n_days), dtype=bool)

        daily_rate = config.onset_rate_per_sector / max(n_days, 1)
        per_sector_rate = np.full(n_sectors, daily_rate)
        if onset_weights is not None:
            per_sector_rate = daily_rate * np.clip(onset_weights, 0.1, 4.0)
        candidate = rng.random((n_sectors, n_days)) < per_sector_rate[:, None]
        hold_p = 1.0 / max(config.onset_hold_days_mean, 1.0)
        ramp_days = max(int(config.onset_ramp_days), 1)
        for sector, day in zip(*np.nonzero(candidate)):
            # Skip onsets that would overlap an existing degraded period
            # so each onset is a clean healthy→hot transition.
            day_start_hour = day * HOURS_PER_DAY
            if degradation[sector, max(day_start_hour - 1, 0)] > 0:
                continue
            hold_days = max(int(rng.geometric(hold_p)), 3)
            severity = rng.uniform(0.9, 1.2)
            hi = min((day + hold_days) * HOURS_PER_DAY, n_hours)
            if hi <= day_start_hour:
                continue
            degradation[sector, day_start_hour:hi] = severity
            onset_days[sector, day] = True
            # Precursor: linear ramp over the preceding ramp_days days.
            ramp_lo_day = max(day - ramp_days, 0)
            for lead, ramp_day in enumerate(range(ramp_lo_day, day)):
                fraction = (lead + 1 + (day - ramp_days - ramp_lo_day)) / ramp_days
                fraction = np.clip(fraction, 0.0, 1.0)
                lo = ramp_day * HOURS_PER_DAY
                precursor[sector, lo : lo + HOURS_PER_DAY] = np.maximum(
                    precursor[sector, lo : lo + HOURS_PER_DAY], fraction * severity
                )
        return degradation, precursor, onset_days


# ===================================================================== #
# Streaming event plan                                                  #
# ===================================================================== #
#
# The batch EventSimulator above materialises hour-granular intensity
# matrices for the whole horizon — O(n_sectors * n_hours) per process,
# which is exactly what the out-of-core generator must avoid.  The
# streaming path splits event simulation into two phases:
#
# 1. plan_events() draws every event *once*, from per-week child
#    streams, and stores them at their natural granularity: sparse
#    event lists for failures/storms/interference, day-granular
#    (n_sectors, n_days) grids for onsets (whose precursor ramps extend
#    *backward* from each onset, and whose degraded periods cross week
#    boundaries — both need the whole horizon before any hour is
#    rendered, but only at day resolution, which is 24x smaller).
# 2. EventPlan.render() expands any day-aligned hour window to the
#    hourly EventIntensities the KPI catalog consumes.
#
# Every random stream is keyed per week (np.random.default_rng([seed,
# tag, week])), so the generated world is a pure function of the events
# child seed — independent of chunk size, process, or platform.

_FAILURE_STREAM = 0
_STORM_STREAM = 1
_INTERFERENCE_STREAM = 2
_ONSET_STREAM = 3


def _week_stream(seed: int, tag: int, week: int) -> np.random.Generator:
    """Deterministic per-(component, week) child generator."""
    return np.random.default_rng([int(seed), int(tag), int(week)])


@dataclass(frozen=True)
class EventPlan:
    """Whole-horizon event plan at day/event granularity.

    Sparse event lists hold ``(where, start_hour, end_hour, magnitude)``
    columns; the day grids hold the onset machinery.  Memory is
    O(events + n_sectors * n_days), not O(n_sectors * n_hours).
    """

    tower_ids: np.ndarray
    n_hours: int
    # failures: per-tower hour spans with severity (max-combined on render)
    failure_tower: np.ndarray
    failure_lo: np.ndarray
    failure_hi: np.ndarray
    failure_severity: np.ndarray
    # storms: one per (sector, day) with bump parameters (additive)
    storm_sector: np.ndarray
    storm_day: np.ndarray
    storm_centre: np.ndarray
    storm_width: np.ndarray
    storm_gain: np.ndarray
    # interference: per-sector hour spans with level (max-combined)
    interference_sector: np.ndarray
    interference_lo: np.ndarray
    interference_hi: np.ndarray
    interference_level: np.ndarray
    # onsets: day-granular grids (values are day-constant in the batch
    # simulator too, so rendering repeats them 24x without loss)
    degradation_day: np.ndarray
    precursor_day: np.ndarray
    onset_days: np.ndarray

    def render(self, lo_hour: int, hi_hour: int) -> EventIntensities:
        """Hourly intensities for the day-aligned window ``[lo_hour, hi_hour)``."""
        if lo_hour % HOURS_PER_DAY or hi_hour % HOURS_PER_DAY:
            raise ValueError(
                f"window [{lo_hour}, {hi_hour}) must be day-aligned"
            )
        if not 0 <= lo_hour < hi_hour <= self.n_hours:
            raise ValueError(
                f"window [{lo_hour}, {hi_hour}) outside [0, {self.n_hours})"
            )
        n_sectors = self.tower_ids.size
        n_towers = int(self.tower_ids.max()) + 1 if n_sectors else 0
        n_hours = hi_hour - lo_hour
        d0, d1 = lo_hour // HOURS_PER_DAY, hi_hour // HOURS_PER_DAY

        tower_failure = np.zeros((n_towers, n_hours), dtype=np.float64)
        live = (self.failure_lo < hi_hour) & (self.failure_hi > lo_hour)
        for tower, lo, hi, severity in zip(
            self.failure_tower[live],
            np.maximum(self.failure_lo[live], lo_hour) - lo_hour,
            np.minimum(self.failure_hi[live], hi_hour) - lo_hour,
            self.failure_severity[live],
        ):
            tower_failure[tower, lo:hi] = np.maximum(tower_failure[tower, lo:hi], severity)
        failure = tower_failure[self.tower_ids]

        surge = np.zeros((n_sectors, n_hours), dtype=np.float64)
        hours = np.arange(HOURS_PER_DAY, dtype=np.float64)
        live = (self.storm_day >= d0) & (self.storm_day < d1)
        for sector, day, centre, width, gain in zip(
            self.storm_sector[live],
            self.storm_day[live],
            self.storm_centre[live],
            self.storm_width[live],
            self.storm_gain[live],
        ):
            bump = gain * np.exp(-0.5 * ((hours - centre) / width) ** 2)
            lo = (day - d0) * HOURS_PER_DAY
            surge[sector, lo : lo + HOURS_PER_DAY] += bump

        interference = np.zeros((n_sectors, n_hours), dtype=np.float64)
        live = (self.interference_lo < hi_hour) & (self.interference_hi > lo_hour)
        for sector, lo, hi, level in zip(
            self.interference_sector[live],
            np.maximum(self.interference_lo[live], lo_hour) - lo_hour,
            np.minimum(self.interference_hi[live], hi_hour) - lo_hour,
            self.interference_level[live],
        ):
            interference[sector, lo:hi] = np.maximum(interference[sector, lo:hi], level)

        degradation = np.repeat(self.degradation_day[:, d0:d1], HOURS_PER_DAY, axis=1)
        precursor = np.repeat(self.precursor_day[:, d0:d1], HOURS_PER_DAY, axis=1)
        return EventIntensities(
            failure=failure,
            surge=surge,
            interference=interference,
            degradation=degradation,
            precursor=precursor,
            onset_days=self.onset_days[:, d0:d1],
        )


def plan_events(
    config: EventConfig,
    seed: int,
    tower_ids: np.ndarray,
    n_hours: int,
    onset_weights: np.ndarray | None = None,
) -> EventPlan:
    """Draw every event process once, from per-week child streams.

    Mirrors the processes of :class:`EventSimulator` (same rates, same
    magnitude distributions) but keys each week's draws to
    ``default_rng([seed, stream, week])`` so the plan — and hence the
    streamed world — is identical however the horizon is later chunked.
    """
    if n_hours % HOURS_PER_DAY != 0:
        raise ValueError(f"n_hours must be a multiple of 24, got {n_hours}")
    tower_ids = np.asarray(tower_ids, dtype=np.int64)
    n_sectors = tower_ids.size
    n_towers = int(tower_ids.max()) + 1 if n_sectors else 0
    n_days = n_hours // HOURS_PER_DAY
    n_weeks = -(-n_hours // HOURS_PER_WEEK)
    if onset_weights is not None:
        onset_weights = np.asarray(onset_weights, dtype=np.float64)
        if onset_weights.shape != (n_sectors,):
            raise ValueError(
                f"onset_weights must be ({n_sectors},), got {onset_weights.shape}"
            )

    failure_events: list[tuple[int, int, int, float]] = []
    storm_events: list[tuple[int, int, float, float, float]] = []
    interference_events: list[tuple[int, int, int, float]] = []
    degradation_day = np.zeros((n_sectors, n_days), dtype=np.float64)
    precursor_day = np.zeros((n_sectors, n_days), dtype=np.float64)
    onset_days = np.zeros((n_sectors, n_days), dtype=bool)

    hourly_start_prob = config.failure_rate_per_tower_day / HOURS_PER_DAY
    failure_duration_p = 1.0 / max(config.failure_duration_mean_hours, 1.0)
    interference_duration_p = 1.0 / max(config.interference_duration_mean_days, 1.0)
    daily_onset_rate = config.onset_rate_per_sector / max(n_days, 1)
    per_sector_rate = np.full(n_sectors, daily_onset_rate)
    if onset_weights is not None:
        per_sector_rate = daily_onset_rate * np.clip(onset_weights, 0.1, 4.0)
    hold_p = 1.0 / max(config.onset_hold_days_mean, 1.0)
    ramp_days = max(int(config.onset_ramp_days), 1)

    for week in range(n_weeks):
        week_lo = week * HOURS_PER_WEEK
        week_hours = min(HOURS_PER_WEEK, n_hours - week_lo)
        week_days = week_hours // HOURS_PER_DAY
        day0 = week_lo // HOURS_PER_DAY

        rng = _week_stream(seed, _FAILURE_STREAM, week)
        starts = rng.random((n_towers, week_hours)) < hourly_start_prob
        for tower, hour in zip(*np.nonzero(starts)):
            duration = int(rng.geometric(failure_duration_p))
            severity = float(rng.uniform(0.7, 1.3))
            lo = week_lo + int(hour)
            failure_events.append((int(tower), lo, min(lo + duration, n_hours), severity))

        rng = _week_stream(seed, _STORM_STREAM, week)
        storm_days = rng.random((n_sectors, week_days)) < config.congestion_storm_rate_per_day
        for sector, day in zip(*np.nonzero(storm_days)):
            centre = float(rng.uniform(12.0, 20.0))
            width = float(rng.uniform(2.0, 4.0))
            gain = (config.storm_gain - 1.0) * float(rng.uniform(0.6, 1.4))
            storm_events.append((int(sector), day0 + int(day), centre, width, gain))

        rng = _week_stream(seed, _INTERFERENCE_STREAM, week)
        starts = rng.random((n_sectors, week_days)) < config.interference_rate_per_day
        for sector, day in zip(*np.nonzero(starts)):
            duration_days = int(rng.geometric(interference_duration_p))
            level = float(rng.uniform(0.5, 1.2))
            lo = (day0 + int(day)) * HOURS_PER_DAY
            hi = min((day0 + int(day) + duration_days) * HOURS_PER_DAY, n_hours)
            interference_events.append((int(sector), lo, hi, level))

        rng = _week_stream(seed, _ONSET_STREAM, week)
        candidate = rng.random((n_sectors, week_days)) < per_sector_rate[:, None]
        for sector, day in zip(*np.nonzero(candidate)):
            day = day0 + int(day)
            # Same clean-transition rule as the batch simulator: skip
            # onsets that would start inside an existing degraded period.
            if day > 0 and degradation_day[sector, day - 1] > 0:
                continue
            hold_days = max(int(rng.geometric(hold_p)), 3)
            severity = float(rng.uniform(0.9, 1.2))
            degradation_day[sector, day : day + hold_days] = severity
            onset_days[sector, day] = True
            ramp_lo_day = max(day - ramp_days, 0)
            for lead, ramp_day in enumerate(range(ramp_lo_day, day)):
                fraction = (lead + 1 + (day - ramp_days - ramp_lo_day)) / ramp_days
                fraction = float(np.clip(fraction, 0.0, 1.0))
                precursor_day[sector, ramp_day] = max(
                    precursor_day[sector, ramp_day], fraction * severity
                )

    def _columns(events: list, dtypes: tuple) -> tuple[np.ndarray, ...]:
        if events:
            columns = tuple(np.asarray(col) for col in zip(*events))
        else:
            columns = tuple(np.empty(0) for _ in dtypes)
        return tuple(col.astype(dt) for col, dt in zip(columns, dtypes))

    f_tower, f_lo, f_hi, f_sev = _columns(
        failure_events, (np.int64, np.int64, np.int64, np.float64)
    )
    s_sector, s_day, s_centre, s_width, s_gain = _columns(
        storm_events, (np.int64, np.int64, np.float64, np.float64, np.float64)
    )
    i_sector, i_lo, i_hi, i_level = _columns(
        interference_events, (np.int64, np.int64, np.int64, np.float64)
    )
    return EventPlan(
        tower_ids=tower_ids,
        n_hours=n_hours,
        failure_tower=f_tower,
        failure_lo=f_lo,
        failure_hi=f_hi,
        failure_severity=f_sev,
        storm_sector=s_sector,
        storm_day=s_day,
        storm_centre=s_centre,
        storm_width=s_width,
        storm_gain=s_gain,
        interference_sector=i_sector,
        interference_lo=i_lo,
        interference_hi=i_hi,
        interference_level=i_level,
        degradation_day=degradation_day,
        precursor_day=precursor_day,
        onset_days=onset_days,
    )
