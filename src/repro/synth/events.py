"""Non-regular event processes.

The generator layers four stochastic event processes on top of the
regular land-use load profiles.  Each process produces an hourly latent
intensity per sector; the KPI catalog then maps latent states to
indicator channels.

* **Hardware failures** strike a whole tower for a heavy-tailed number
  of hours, degrading accessibility/retainability KPIs of every sector
  on the tower.  Shared failures are what correlate same-tower label
  series (paper Fig. 8, distance-0 bucket).
* **Congestion storms** are one-day demand surges on a single sector
  (paper Fig. 1B: shopping-day spike near a commercial area).
* **Interference episodes** raise noise KPIs for a few days.
* **Emerging persistent degradations** ("onsets") turn a sector into a
  persistent hot spot for one or more weeks, preceded by a multi-day
  precursor ramp in usage/congestion intensity.  The ramp is the causal
  signal behind the paper's key result: tree models forecasting
  "become a hot spot" beat score-only baselines by >100 % at moderate
  horizons, an advantage that vanishes once the horizon exceeds the
  ramp's reach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tensor import HOURS_PER_DAY
from repro.synth.config import EventConfig

__all__ = ["EventIntensities", "EventSimulator"]


@dataclass(frozen=True)
class EventIntensities:
    """Hourly latent intensities produced by the event processes.

    All arrays have shape ``(n_sectors, n_hours)`` with values in
    ``[0, ~1.5]``; 0 means "no event active".

    Attributes
    ----------
    failure:
        Hardware-fault severity (affects accessibility, retainability,
        availability and setup-failure KPIs, and the hot spot score).
    surge:
        Demand-surge multiplier *excess* (0 = normal demand; 1 = demand
        roughly doubled).
    interference:
        External interference level (affects noise KPIs).
    degradation:
        Persistent-degradation severity after an onset (1 while the
        sector is in its degraded period).
    precursor:
        Precursor ramp intensity rising linearly from 0 to 1 over the
        configured number of days *before* each onset.  Feeds only the
        usage/congestion KPIs; the raw KPI columns see it from the first
        ramp day, while the score only reacts in the final ramp days
        (when the ramp gets strong enough to trip the usage thresholds),
        so score-only baselines see a much shorter warning.
    onset_days:
        Boolean matrix ``(n_sectors, n_days)``; True on the first day of
        each degraded period (ground-truth onsets, useful for tests).
    """

    failure: np.ndarray
    surge: np.ndarray
    interference: np.ndarray
    degradation: np.ndarray
    precursor: np.ndarray
    onset_days: np.ndarray


class EventSimulator:
    """Simulate all non-regular event processes for a network.

    Parameters
    ----------
    config:
        Event rates and magnitudes.
    rng:
        Dedicated random generator.
    """

    def __init__(self, config: EventConfig, rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng

    def simulate(
        self,
        tower_ids: np.ndarray,
        n_hours: int,
        onset_weights: np.ndarray | None = None,
    ) -> EventIntensities:
        """Run every event process.

        Parameters
        ----------
        tower_ids:
            Tower id per sector; failures are drawn per tower and
            broadcast to its sectors.
        n_hours:
            Number of hourly samples (must be a multiple of 24).
        onset_weights:
            Optional per-sector multipliers on the onset probability
            (mean ~1).  The generator passes load-derived weights so
            that persistent degradations preferentially hit heavily
            loaded equipment — which is what correlates pre-transition
            scores with future transitions, as the paper observes.
        """
        if n_hours % HOURS_PER_DAY != 0:
            raise ValueError(f"n_hours must be a multiple of 24, got {n_hours}")
        tower_ids = np.asarray(tower_ids, dtype=np.int64)
        n_sectors = tower_ids.size
        n_days = n_hours // HOURS_PER_DAY
        if onset_weights is not None:
            onset_weights = np.asarray(onset_weights, dtype=np.float64)
            if onset_weights.shape != (n_sectors,):
                raise ValueError(
                    f"onset_weights must be ({n_sectors},), got {onset_weights.shape}"
                )

        failure = self._simulate_failures(tower_ids, n_hours)
        surge = self._simulate_storms(n_sectors, n_days, n_hours)
        interference = self._simulate_interference(n_sectors, n_days, n_hours)
        degradation, precursor, onset_days = self._simulate_onsets(
            n_sectors, n_days, n_hours, onset_weights
        )
        return EventIntensities(
            failure=failure,
            surge=surge,
            interference=interference,
            degradation=degradation,
            precursor=precursor,
            onset_days=onset_days,
        )

    # ------------------------------------------------------------ failures
    def _simulate_failures(self, tower_ids: np.ndarray, n_hours: int) -> np.ndarray:
        config = self._config
        rng = self._rng
        n_towers = int(tower_ids.max()) + 1 if tower_ids.size else 0
        n_days = n_hours // HOURS_PER_DAY
        tower_failure = np.zeros((n_towers, n_hours), dtype=np.float64)
        hourly_start_prob = config.failure_rate_per_tower_day / HOURS_PER_DAY
        starts = rng.random((n_towers, n_hours)) < hourly_start_prob
        duration_p = 1.0 / max(config.failure_duration_mean_hours, 1.0)
        for tower, hour in zip(*np.nonzero(starts)):
            duration = int(rng.geometric(duration_p))
            severity = rng.uniform(0.7, 1.3)
            tower_failure[tower, hour : hour + duration] = np.maximum(
                tower_failure[tower, hour : hour + duration], severity
            )
        del n_days
        return tower_failure[tower_ids]

    # -------------------------------------------------------------- storms
    def _simulate_storms(self, n_sectors: int, n_days: int, n_hours: int) -> np.ndarray:
        config = self._config
        rng = self._rng
        surge = np.zeros((n_sectors, n_hours), dtype=np.float64)
        storm_days = rng.random((n_sectors, n_days)) < config.congestion_storm_rate_per_day
        # A storm is an afternoon-centred bump lasting most of the day.
        hours = np.arange(HOURS_PER_DAY, dtype=np.float64)
        for sector, day in zip(*np.nonzero(storm_days)):
            centre = rng.uniform(12.0, 20.0)
            width = rng.uniform(2.0, 4.0)
            gain = (config.storm_gain - 1.0) * rng.uniform(0.6, 1.4)
            bump = gain * np.exp(-0.5 * ((hours - centre) / width) ** 2)
            lo = day * HOURS_PER_DAY
            surge[sector, lo : lo + HOURS_PER_DAY] += bump
        return surge

    # -------------------------------------------------------- interference
    def _simulate_interference(
        self, n_sectors: int, n_days: int, n_hours: int
    ) -> np.ndarray:
        config = self._config
        rng = self._rng
        interference = np.zeros((n_sectors, n_hours), dtype=np.float64)
        starts = rng.random((n_sectors, n_days)) < config.interference_rate_per_day
        duration_p = 1.0 / max(config.interference_duration_mean_days, 1.0)
        for sector, day in zip(*np.nonzero(starts)):
            duration_days = int(rng.geometric(duration_p))
            level = rng.uniform(0.5, 1.2)
            lo = day * HOURS_PER_DAY
            hi = min((day + duration_days) * HOURS_PER_DAY, n_hours)
            interference[sector, lo:hi] = np.maximum(interference[sector, lo:hi], level)
        return interference

    # --------------------------------------------------------------- onsets
    def _simulate_onsets(
        self,
        n_sectors: int,
        n_days: int,
        n_hours: int,
        onset_weights: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        config = self._config
        rng = self._rng
        degradation = np.zeros((n_sectors, n_hours), dtype=np.float64)
        precursor = np.zeros((n_sectors, n_hours), dtype=np.float64)
        onset_days = np.zeros((n_sectors, n_days), dtype=bool)

        daily_rate = config.onset_rate_per_sector / max(n_days, 1)
        per_sector_rate = np.full(n_sectors, daily_rate)
        if onset_weights is not None:
            per_sector_rate = daily_rate * np.clip(onset_weights, 0.1, 4.0)
        candidate = rng.random((n_sectors, n_days)) < per_sector_rate[:, None]
        hold_p = 1.0 / max(config.onset_hold_days_mean, 1.0)
        ramp_days = max(int(config.onset_ramp_days), 1)
        for sector, day in zip(*np.nonzero(candidate)):
            # Skip onsets that would overlap an existing degraded period
            # so each onset is a clean healthy→hot transition.
            day_start_hour = day * HOURS_PER_DAY
            if degradation[sector, max(day_start_hour - 1, 0)] > 0:
                continue
            hold_days = max(int(rng.geometric(hold_p)), 3)
            severity = rng.uniform(0.9, 1.2)
            hi = min((day + hold_days) * HOURS_PER_DAY, n_hours)
            if hi <= day_start_hour:
                continue
            degradation[sector, day_start_hour:hi] = severity
            onset_days[sector, day] = True
            # Precursor: linear ramp over the preceding ramp_days days.
            ramp_lo_day = max(day - ramp_days, 0)
            for lead, ramp_day in enumerate(range(ramp_lo_day, day)):
                fraction = (lead + 1 + (day - ramp_days - ramp_lo_day)) / ramp_days
                fraction = np.clip(fraction, 0.0, 1.0)
                lo = ramp_day * HOURS_PER_DAY
                precursor[sector, lo : lo + HOURS_PER_DAY] = np.maximum(
                    precursor[sector, lo : lo + HOURS_PER_DAY], fraction * severity
                )
        return degradation, precursor, onset_days
