"""Configuration dataclasses for the telemetry generator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "EventConfig",
    "MissingnessConfig",
    "GeneratorConfig",
    "SizeTier",
    "SIZE_TIERS",
    "tier_config",
]


@dataclass(frozen=True)
class EventConfig:
    """Rates and magnitudes of non-regular network events.

    All per-day probabilities are per sector unless stated otherwise.

    Attributes
    ----------
    failure_rate_per_tower_day:
        Probability that a tower suffers a hardware failure on a given
        day.  Failures hit *all* sectors of the tower (this is what makes
        same-tower label series correlate, paper Fig. 8 distance 0) and
        last a heavy-tailed number of hours.
    failure_duration_mean_hours:
        Mean of the (geometric) failure duration in hours.
    congestion_storm_rate_per_day:
        Probability of a one-day localised demand surge on a sector
        (concerts, incidents, popular shopping days — paper Fig. 1B).
    storm_gain:
        Multiplicative load amplification at the peak of a storm.
    interference_rate_per_day:
        Probability that an external interference episode starts on a
        sector on a given day.
    interference_duration_mean_days:
        Mean duration of an interference episode in days.
    onset_rate_per_sector:
        Expected number of *emerging persistent degradations* per sector
        over the whole horizon.  Each onset turns a previously healthy
        sector into a persistent hot spot for one to a few weeks.
    onset_ramp_days:
        Length of the precursor ramp: usage/congestion KPIs rise during
        the ``onset_ramp_days`` days *before* the score crosses the hot
        spot threshold.  This is the causal signal that lets tree models
        forecast "become a hot spot" at horizons up to roughly
        ``onset_ramp_days + onset_hold_days``.
    onset_hold_days_mean:
        Mean number of days the degraded state persists after onset.
    """

    failure_rate_per_tower_day: float = 0.004
    failure_duration_mean_hours: float = 14.0
    congestion_storm_rate_per_day: float = 0.006
    storm_gain: float = 2.4
    interference_rate_per_day: float = 0.003
    interference_duration_mean_days: float = 2.0
    onset_rate_per_sector: float = 0.8
    onset_ramp_days: int = 14
    onset_hold_days_mean: float = 9.0

    def __post_init__(self) -> None:
        rates = {
            "failure_rate_per_tower_day": self.failure_rate_per_tower_day,
            "congestion_storm_rate_per_day": self.congestion_storm_rate_per_day,
            "interference_rate_per_day": self.interference_rate_per_day,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        if self.onset_rate_per_sector < 0:
            raise ValueError("onset_rate_per_sector must be non-negative")
        if self.onset_ramp_days < 1:
            raise ValueError("onset_ramp_days must be >= 1")
        if self.storm_gain < 1.0:
            raise ValueError("storm_gain must be >= 1 (a storm adds demand)")


@dataclass(frozen=True)
class MissingnessConfig:
    """Missing-value injection rates (paper Sec. II-C).

    The paper observes three missingness shapes: isolated entries
    ``K[i, j, k]``, whole-hour slices ``K[i, j, :]`` (site offline or
    backbone congested for that hour), and multi-hour blocks
    ``K[i, j:j+t, :]`` (collection outage).  After sector filtering the
    paper is left with ~4 % missing values; the defaults land in the
    same regime.
    """

    point_rate: float = 0.01
    hour_slice_rate: float = 0.004
    block_rate_per_week: float = 0.03
    block_duration_mean_hours: float = 30.0
    dead_sector_fraction: float = 0.1
    dead_sector_min_weeks: int = 1

    def __post_init__(self) -> None:
        for name in ("point_rate", "hour_slice_rate", "dead_sector_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.block_rate_per_week < 0:
            raise ValueError("block_rate_per_week must be non-negative")
        if self.dead_sector_min_weeks < 1:
            raise ValueError("dead_sector_min_weeks must be >= 1")


@dataclass(frozen=True)
class GeneratorConfig:
    """Top-level knobs of the synthetic telemetry generator.

    The defaults produce a laptop-scale network that is structurally
    faithful to the paper's data set: 18 weeks of hourly samples starting
    on a Monday, 21 KPI channels, towers with three sectors each,
    clustered into cities with land-use classes.

    Attributes
    ----------
    n_towers:
        Number of towers; each carries ``sectors_per_tower`` sectors, so
        the sector count is their product.
    sectors_per_tower:
        Sectors per tower (3 for a standard tri-sector 3G site).
    n_weeks:
        Number of whole weeks generated (paper: 18).
    n_cities:
        Number of urban clusters towers are placed around.
    map_size_km:
        Side of the square map; the paper's Fig. 8 distance axis tops
        out at ~204 km, so the default map spans comparable distances.
    chronic_hot_fraction:
        Fraction of sectors whose baseline capacity is so tight they are
        hot during every busy period — these create the always-hot
        population visible in paper Figs. 3 and 6C.
    seed:
        Seed of the top-level random generator.  Every stochastic
        component derives an independent child generator from it, so a
        given seed fully determines the data set.
    """

    n_towers: int = 100
    sectors_per_tower: int = 3
    n_weeks: int = 18
    n_cities: int = 4
    map_size_km: float = 220.0
    chronic_hot_fraction: float = 0.06
    events: EventConfig = field(default_factory=EventConfig)
    missingness: MissingnessConfig = field(default_factory=MissingnessConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_towers <= 0:
            raise ValueError("n_towers must be positive")
        if self.sectors_per_tower <= 0:
            raise ValueError("sectors_per_tower must be positive")
        if self.n_weeks <= 0:
            raise ValueError("n_weeks must be positive")
        if self.n_cities <= 0:
            raise ValueError("n_cities must be positive")
        if not 0.0 <= self.chronic_hot_fraction < 1.0:
            raise ValueError("chronic_hot_fraction must be in [0, 1)")

    @property
    def n_sectors(self) -> int:
        return self.n_towers * self.sectors_per_tower

    @property
    def n_hours(self) -> int:
        return self.n_weeks * 168

    @property
    def n_days(self) -> int:
        return self.n_weeks * 7


@dataclass(frozen=True)
class SizeTier:
    """A named world size for benchmarks and at-scale testing.

    Tiers fix the full generator configuration (towers, weeks, seed) so
    a tier name identifies one exact world: generating a tier twice —
    in the same process, across processes, or chunked differently —
    yields bitwise-identical telemetry and therefore the same chunked
    store content hash.

    Attributes
    ----------
    name:
        Tier identifier (``small`` / ``paper`` / ``national``).
    n_towers, n_weeks, seed:
        The :class:`GeneratorConfig` overrides that define the world.
    chunk_weeks:
        Default chunk size (in weeks) when the tier is written as a
        chunked store.
    description:
        One-line summary for docs and CLI help.
    """

    name: str
    n_towers: int
    n_weeks: int
    seed: int
    chunk_weeks: int = 1
    description: str = ""

    @property
    def n_sectors(self) -> int:
        return self.n_towers * 3

    @property
    def n_hours(self) -> int:
        return self.n_weeks * 168

    def config(self) -> "GeneratorConfig":
        """The generator configuration this tier pins down."""
        return GeneratorConfig(
            n_towers=self.n_towers, n_weeks=self.n_weeks, seed=self.seed
        )


SIZE_TIERS: dict[str, SizeTier] = {
    tier.name: tier
    for tier in (
        SizeTier(
            name="small",
            n_towers=30,
            n_weeks=4,
            seed=1001,
            description="90 sectors x 4 weeks — CI-sized smoke world (~11 MB in RAM)",
        ),
        SizeTier(
            name="paper",
            n_towers=3400,
            n_weeks=18,
            seed=2017,
            description=(
                "10,200 sectors x 18 weeks — the paper's deployment regime "
                "(~5.8 GB in RAM; generate chunked)"
            ),
        ),
        SizeTier(
            name="national",
            n_towers=16000,
            n_weeks=18,
            seed=3001,
            description=(
                "48,000 sectors x 18 weeks — national-network scale "
                "(~27 GB in RAM; chunked storage only)"
            ),
        ),
    )
}


def tier_config(name: str) -> GeneratorConfig:
    """Generator configuration for a named size tier.

    Raises ``KeyError`` with the known tier names when *name* is not a
    tier.
    """
    try:
        return SIZE_TIERS[name].config()
    except KeyError:
        raise KeyError(
            f"unknown size tier {name!r}; known tiers: {sorted(SIZE_TIERS)}"
        ) from None
