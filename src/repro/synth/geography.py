"""Network geography: tower placement and land-use assignment.

Towers are placed around a handful of urban clusters plus a rural
scatter, three sectors per tower by default.  Every sector gets a
land-use class that drives its latent demand profile.  Two properties of
the paper's spatial analysis (Fig. 8) are implanted here:

* sectors of the same tower share coordinates (distance 0) and, later,
  share tower-level failure events, which makes their hot spot label
  series the most correlated bucket;
* land-use classes repeat across distant cities ("urban share is one of
  those usages that can be scattered across geography"), which is why
  highly correlated behaviours exist at *any* distance.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.data.dataset import SectorGeography
from repro.synth.config import GeneratorConfig

__all__ = ["LandUse", "LAND_USE_NAMES", "NetworkGeographyBuilder"]


class LandUse(IntEnum):
    """Land-use class of the area a sector covers."""

    RESIDENTIAL = 0
    BUSINESS = 1
    COMMERCIAL = 2
    TRANSPORT = 3
    NIGHTLIFE = 4
    RURAL = 5


LAND_USE_NAMES = {
    LandUse.RESIDENTIAL: "residential",
    LandUse.BUSINESS: "business",
    LandUse.COMMERCIAL: "commercial",
    LandUse.TRANSPORT: "transport",
    LandUse.NIGHTLIFE: "nightlife",
    LandUse.RURAL: "rural",
}

# Mix of land uses inside a city cluster vs in the rural scatter.
_URBAN_MIX = {
    LandUse.RESIDENTIAL: 0.32,
    LandUse.BUSINESS: 0.26,
    LandUse.COMMERCIAL: 0.18,
    LandUse.TRANSPORT: 0.14,
    LandUse.NIGHTLIFE: 0.10,
}
_RURAL_FRACTION = 0.25  # fraction of towers outside any city


class NetworkGeographyBuilder:
    """Build a :class:`~repro.data.dataset.SectorGeography` for a config.

    Parameters
    ----------
    config:
        Generator configuration (tower counts, city count, map size).
    rng:
        Dedicated random generator for geography.
    """

    def __init__(self, config: GeneratorConfig, rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng

    def build(self) -> SectorGeography:
        """Place towers and assign land use; returns the sector geography."""
        config = self._config
        rng = self._rng
        n_rural = int(round(config.n_towers * _RURAL_FRACTION))
        n_urban = config.n_towers - n_rural

        city_centres = rng.uniform(
            0.1 * config.map_size_km, 0.9 * config.map_size_km, size=(config.n_cities, 2)
        )
        city_of_tower = rng.integers(0, config.n_cities, size=n_urban)
        # Urban towers: dense Gaussian cloud around the assigned city
        # (sub-kilometre spacing, as in real urban deployments).
        urban_positions = city_centres[city_of_tower] + rng.normal(
            scale=1.0, size=(n_urban, 2)
        )
        rural_positions = rng.uniform(0.0, config.map_size_km, size=(n_rural, 2))
        tower_positions = np.vstack([urban_positions, rural_positions])
        tower_positions = np.clip(tower_positions, 0.0, config.map_size_km)

        tower_land_use = np.empty(config.n_towers, dtype=np.int64)
        urban_classes = np.asarray(list(_URBAN_MIX.keys()), dtype=np.int64)
        urban_probs = np.asarray(list(_URBAN_MIX.values()), dtype=np.float64)
        urban_probs = urban_probs / urban_probs.sum()
        tower_land_use[:n_urban] = rng.choice(urban_classes, size=n_urban, p=urban_probs)
        tower_land_use[n_urban:] = int(LandUse.RURAL)

        sectors_per_tower = config.sectors_per_tower
        positions = np.repeat(tower_positions, sectors_per_tower, axis=0)
        tower_ids = np.repeat(np.arange(config.n_towers), sectors_per_tower)
        land_use = np.repeat(tower_land_use, sectors_per_tower)
        return SectorGeography(
            positions_km=positions, tower_ids=tower_ids, land_use=land_use
        )
