"""The 21-KPI catalog.

The paper uses ``l = 21`` KPIs grouped into coverage, accessibility,
retainability, mobility, and availability/congestion classes
(Sec. II-B).  This module defines a synthetic counterpart: each channel
is a documented function of the latent sector state (load, failure,
surge, interference, degradation, precursor) plus observation noise.

Channel ordering is chosen so that the 1-based indices the paper's
feature-importance analysis highlights carry the same meaning here:

* k=6  — noise rise conditions (interference),
* k=8  — data utilization rate (congestion),
* k=9  — users queuing for a high-speed channel (usage),
* k=10 — channel setup failure (signalling),
* k=12 — absolute noise measurement (interference),
* k=14 — transmission (TTI) occupancy (usage).

All channels are oriented so that *larger = worse or busier*, except the
explicitly inverted "success"/"availability" ratios, which the score
thresholds handle with their own orientation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KPI_NAMES", "KPI_CLASSES", "KPICatalog", "LatentState"]

KPI_NAMES: tuple[str, ...] = (
    "pilot_power_deviation",       # 1  coverage
    "rscp_coverage_shortfall",     # 2  coverage
    "ecno_quality_degradation",    # 3  coverage
    "voice_setup_failure_ratio",   # 4  accessibility
    "data_setup_failure_ratio",    # 5  accessibility
    "noise_rise",                  # 6  coverage/interference  (paper k=6)
    "paging_failure_ratio",        # 7  accessibility
    "data_utilization_rate",       # 8  congestion            (paper k=8)
    "hsdpa_queue_users",           # 9  usage/congestion      (paper k=9)
    "channel_setup_failure",       # 10 signalling            (paper k=10)
    "voice_drop_ratio",            # 11 retainability
    "noise_floor_level",           # 12 interference          (paper k=12)
    "data_drop_ratio",             # 13 retainability
    "tti_occupancy",               # 14 usage                 (paper k=14)
    "handover_failure_ratio",      # 15 mobility
    "soft_handover_overhead",      # 16 mobility
    "voice_blocking",              # 17 availability          (Fig. 1A)
    "data_throughput_deficit",     # 18 data                  (Fig. 1B)
    "free_channel_shortage",       # 19 availability
    "congestion_ratio",            # 20 congestion
    "cell_unavailability",         # 21 availability
)

KPI_CLASSES: dict[str, tuple[int, ...]] = {
    # 1-based indices per class, mirroring the paper's grouping.
    "coverage": (1, 2, 3, 6, 12),
    "accessibility": (4, 5, 7, 10),
    "retainability": (11, 13),
    "mobility": (15, 16),
    "availability_congestion": (8, 9, 14, 17, 18, 19, 20, 21),
}

# Indices (0-based) of the usage/congestion channels the precursor ramp
# feeds.  These are the channels the paper finds most important for the
# "become a hot spot" forecast.
PRECURSOR_CHANNELS: tuple[int, ...] = (7, 8, 13, 19)  # k=8, 9, 14, 20 (1-based)


@dataclass(frozen=True)
class LatentState:
    """Latent hourly state of every sector, as produced by the generator.

    All arrays have shape ``(n_sectors, n_hours)``.

    Attributes
    ----------
    load:
        Relative carried load (0 = idle, 1 = nominal busy-hour load,
        values > 1 mean demand exceeds provisioned capacity).
    failure:
        Hardware-fault severity.
    surge:
        Demand-surge excess.
    interference:
        External interference level.
    degradation:
        Persistent degradation severity.
    precursor:
        Pre-onset usage ramp (feeds usage/congestion KPIs only).
    """

    load: np.ndarray
    failure: np.ndarray
    surge: np.ndarray
    interference: np.ndarray
    degradation: np.ndarray
    precursor: np.ndarray


class KPICatalog:
    """Map latent sector state to the 21 observable KPI channels.

    Parameters
    ----------
    rng:
        Dedicated random generator for observation noise.
    noise_scale:
        Global multiplier on every channel's observation noise.
    """

    def __init__(self, rng: np.random.Generator, noise_scale: float = 1.0) -> None:
        self._rng = rng
        self._noise_scale = noise_scale

    @property
    def n_kpis(self) -> int:
        return len(KPI_NAMES)

    def observe(self, state: LatentState) -> np.ndarray:
        """Render the KPI tensor ``K`` (shape ``(n, m_h, 21)``) from latent state.

        Every channel is a smooth monotone function of one or two latent
        drivers, clipped to its physical range, with channel-specific
        Gaussian observation noise.
        """
        load = state.load
        fail = state.failure
        surge = state.surge
        noise_ext = state.interference
        ramp = state.precursor
        # A capacity-degrading fault hurts in proportion to carried
        # traffic: at night a degraded sector barely misbehaves, during
        # waking hours it misbehaves fully.  This produces the paper's
        # ~16-hours-per-day hot spot mode (Fig. 6A) instead of flat 24 h
        # stretches.
        degr = state.degradation * (0.35 + 0.65 * np.clip(load / 0.6, 0.0, 1.0))

        # Effective stress combines demand pressure and degradation: a
        # degraded sector behaves like one with much less usable capacity.
        stress = load * (1.0 + surge) + 0.9 * degr
        # Usage pressure additionally carries the precursor ramp: traffic
        # builds up *before* the sector's health visibly collapses.  The
        # coupling is strong enough that the final ramp days can trip the
        # usage thresholds on busy sectors — the paper observes exactly
        # this ("relatively high scores are typically present before
        # becoming a hot spot"), and it is what gives the Average
        # baseline its partial signal on the 'become' task while the raw
        # KPI columns carry the ramp much earlier.
        usage = load * (1.0 + surge) + 0.85 * ramp + 0.8 * degr
        # Overload beyond the soft capacity point: service-impacting KPIs
        # (blocking, throughput, congestion) start degrading once carried
        # load approaches the provisioned capacity (~0.65 of the nominal
        # busy-hour ceiling), which puts the hot spot onset near load 1.0.
        over = np.clip(stress - 0.65, 0.0, None)

        channels = [
            # -- coverage -----------------------------------------------------
            0.10 + 0.25 * fail + 0.10 * noise_ext,              # 1 pilot_power_deviation
            0.15 + 0.30 * fail + 0.05 * stress,                 # 2 rscp_coverage_shortfall
            0.10 + 0.20 * noise_ext + 0.15 * stress,            # 3 ecno_quality_degradation
            # -- accessibility --------------------------------------------------
            0.02 + 0.30 * over + 0.50 * fail + 0.25 * degr,     # 4 voice_setup_failure_ratio
            0.03 + 0.35 * over + 0.45 * fail + 0.30 * degr,     # 5 data_setup_failure_ratio
            0.10 + 0.60 * noise_ext + 0.25 * usage + 0.2 * degr,  # 6 noise_rise
            0.02 + 0.40 * fail + 0.10 * over,                   # 7 paging_failure_ratio
            # -- congestion / usage ---------------------------------------------
            0.55 * usage + 0.15 * degr,                         # 8 data_utilization_rate
            2.5 * np.clip(usage - 0.55, 0.0, None) + 0.3 * degr,  # 9 hsdpa_queue_users
            0.02 + 0.45 * fail + 0.30 * degr + 0.10 * over,     # 10 channel_setup_failure
            # -- retainability ---------------------------------------------------
            0.01 + 0.35 * fail + 0.20 * over + 0.20 * degr,     # 11 voice_drop_ratio
            0.20 + 0.70 * noise_ext + 0.15 * degr,              # 12 noise_floor_level
            0.02 + 0.30 * fail + 0.25 * over + 0.25 * degr,     # 13 data_drop_ratio
            0.60 * usage + 0.10 * degr,                         # 14 tti_occupancy
            # -- mobility --------------------------------------------------------
            0.02 + 0.40 * fail + 0.10 * noise_ext,              # 15 handover_failure_ratio
            0.25 + 0.20 * stress + 0.10 * noise_ext,            # 16 soft_handover_overhead
            # -- availability / service ------------------------------------------
            0.01 + 0.60 * over + 0.45 * fail + 0.35 * degr,     # 17 voice_blocking
            0.05 + 0.55 * over + 0.30 * fail + 0.40 * degr,     # 18 data_throughput_deficit
            0.05 + 0.50 * over + 0.25 * degr,                   # 19 free_channel_shortage
            0.02 + 0.55 * over + 0.30 * degr + 0.05 * fail,     # 20 congestion_ratio
            0.01 + 0.85 * fail + 0.15 * degr,                   # 21 cell_unavailability
        ]
        tensor = np.stack(channels, axis=-1)

        noise_sd = self._noise_scale * _CHANNEL_NOISE[None, None, :]
        tensor = tensor + self._rng.normal(scale=1.0, size=tensor.shape) * noise_sd
        return np.clip(tensor, 0.0, None)


# Per-channel observation noise standard deviations.  Ratio-like channels
# are quieter; count-like channels (queue users) are noisier.
_CHANNEL_NOISE = np.array(
    [
        0.03, 0.03, 0.03,           # coverage
        0.02, 0.02, 0.05, 0.02,     # accessibility + noise rise
        0.05, 0.12, 0.02,           # utilization, queue, setup failure
        0.015, 0.05, 0.02, 0.05,    # drops, noise floor, occupancy
        0.02, 0.03,                 # mobility
        0.02, 0.04, 0.03, 0.02, 0.015,  # availability block
    ]
)

if len(KPI_NAMES) != 21 or _CHANNEL_NOISE.size != 21:
    raise AssertionError("KPI catalog must define exactly 21 channels")
