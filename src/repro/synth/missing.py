"""Missing-value injection.

Reproduces the three missingness shapes the paper observes (Sec. II-C):

* isolated entries ``K[i, j, k]`` (probe glitches);
* whole-hour slices ``K[i, j, :]`` (site offline / backbone congested
  for that hour);
* multi-hour blocks ``K[i, j:j+t, :]`` (collection outages).

Additionally a configurable fraction of sectors is made effectively dead
(one or more weeks with >50 % of values missing) so that the sector
filter of :mod:`repro.imputation.filtering` has real work to do — the
paper discards ~10 % of sectors this way.
"""

from __future__ import annotations

import numpy as np

from repro.data.tensor import HOURS_PER_WEEK
from repro.synth.config import MissingnessConfig

__all__ = ["inject_missingness"]


def inject_missingness(
    shape: tuple[int, int, int],
    config: MissingnessConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a boolean missing mask for a KPI tensor of the given shape.

    Parameters
    ----------
    shape:
        ``(n_sectors, n_hours, n_kpis)``.
    config:
        Injection rates.
    rng:
        Dedicated random generator.

    Returns
    -------
    numpy.ndarray
        Boolean mask, True where a measurement is missing.
    """
    n_sectors, n_hours, n_kpis = shape
    mask = rng.random(shape) < config.point_rate

    # Whole-hour slices: K[i, j, :].
    hour_slices = rng.random((n_sectors, n_hours)) < config.hour_slice_rate
    mask |= hour_slices[:, :, None]

    # Multi-hour blocks: K[i, j:j+t, :].
    n_weeks = max(n_hours // HOURS_PER_WEEK, 1)
    expected_blocks = config.block_rate_per_week * n_weeks
    block_starts = rng.random((n_sectors, n_hours)) < expected_blocks / n_hours
    duration_p = 1.0 / max(config.block_duration_mean_hours, 1.0)
    for sector, hour in zip(*np.nonzero(block_starts)):
        duration = int(rng.geometric(duration_p))
        mask[sector, hour : hour + duration, :] = True

    # Dead sectors: one or more full weeks mostly missing.
    n_dead = int(round(config.dead_sector_fraction * n_sectors))
    if n_dead > 0 and n_weeks >= 1:
        dead_sectors = rng.choice(n_sectors, size=n_dead, replace=False)
        for sector in dead_sectors:
            n_bad_weeks = int(
                rng.integers(config.dead_sector_min_weeks, max(n_weeks // 2, 2))
            )
            start_week = int(rng.integers(0, max(n_weeks - n_bad_weeks, 1)))
            lo = start_week * HOURS_PER_WEEK
            hi = min((start_week + n_bad_weeks) * HOURS_PER_WEEK, n_hours)
            # >50 % of the week missing: drop a random ~70 % of hours.
            week_hours = rng.random(hi - lo) < 0.7
            mask[sector, lo:hi, :] |= week_hours[:, None]
    return mask
