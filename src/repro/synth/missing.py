"""Missing-value injection.

Reproduces the three missingness shapes the paper observes (Sec. II-C):

* isolated entries ``K[i, j, k]`` (probe glitches);
* whole-hour slices ``K[i, j, :]`` (site offline / backbone congested
  for that hour);
* multi-hour blocks ``K[i, j:j+t, :]`` (collection outages).

Additionally a configurable fraction of sectors is made effectively dead
(one or more weeks with >50 % of values missing) so that the sector
filter of :mod:`repro.imputation.filtering` has real work to do — the
paper discards ~10 % of sectors this way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tensor import HOURS_PER_WEEK
from repro.synth.config import MissingnessConfig

__all__ = ["inject_missingness", "MissingnessPlan", "plan_missingness"]


def inject_missingness(
    shape: tuple[int, int, int],
    config: MissingnessConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a boolean missing mask for a KPI tensor of the given shape.

    Parameters
    ----------
    shape:
        ``(n_sectors, n_hours, n_kpis)``.
    config:
        Injection rates.
    rng:
        Dedicated random generator.

    Returns
    -------
    numpy.ndarray
        Boolean mask, True where a measurement is missing.
    """
    n_sectors, n_hours, n_kpis = shape
    mask = rng.random(shape) < config.point_rate

    # Whole-hour slices: K[i, j, :].
    hour_slices = rng.random((n_sectors, n_hours)) < config.hour_slice_rate
    mask |= hour_slices[:, :, None]

    # Multi-hour blocks: K[i, j:j+t, :].
    n_weeks = max(n_hours // HOURS_PER_WEEK, 1)
    expected_blocks = config.block_rate_per_week * n_weeks
    block_starts = rng.random((n_sectors, n_hours)) < expected_blocks / n_hours
    duration_p = 1.0 / max(config.block_duration_mean_hours, 1.0)
    for sector, hour in zip(*np.nonzero(block_starts)):
        duration = int(rng.geometric(duration_p))
        mask[sector, hour : hour + duration, :] = True

    # Dead sectors: one or more full weeks mostly missing.
    n_dead = int(round(config.dead_sector_fraction * n_sectors))
    if n_dead > 0 and n_weeks >= 1:
        dead_sectors = rng.choice(n_sectors, size=n_dead, replace=False)
        for sector in dead_sectors:
            n_bad_weeks = int(
                rng.integers(config.dead_sector_min_weeks, max(n_weeks // 2, 2))
            )
            start_week = int(rng.integers(0, max(n_weeks - n_bad_weeks, 1)))
            lo = start_week * HOURS_PER_WEEK
            hi = min((start_week + n_bad_weeks) * HOURS_PER_WEEK, n_hours)
            # >50 % of the week missing: drop a random ~70 % of hours.
            week_hours = rng.random(hi - lo) < 0.7
            mask[sector, lo:hi, :] |= week_hours[:, None]
    return mask


# ===================================================================== #
# Streaming missingness plan                                            #
# ===================================================================== #
#
# The streaming generator cannot draw one dense mask for the whole
# horizon.  The structural (cross-week) shapes — multi-hour blocks and
# dead-sector spans — are planned up front as sparse hour spans, while
# the dense point/hour-slice masks are drawn per week from their own
# child streams.  All streams are keyed (seed, tag, week), so the mask
# is a pure function of the missingness child seed, independent of how
# the horizon is later chunked.

_POINT_STREAM = 0
_HOUR_SLICE_STREAM = 1
_BLOCK_STREAM = 2
_DEAD_STREAM = 3


@dataclass(frozen=True)
class MissingnessPlan:
    """Whole-horizon plan of the structural missingness shapes.

    ``block_*`` columns hold multi-hour collection outages as
    ``[lo_hour, hi_hour)`` spans per sector; ``dead_sector`` /
    ``dead_hour`` hold the individual missing hours of the dead-sector
    weeks (sparse — ~70 % of the affected weeks' hours).
    """

    config: MissingnessConfig
    seed: int
    n_sectors: int
    n_hours: int
    block_sector: np.ndarray
    block_lo: np.ndarray
    block_hi: np.ndarray
    dead_sector: np.ndarray
    dead_hour: np.ndarray

    def render(self, lo_hour: int, hi_hour: int, n_kpis: int) -> np.ndarray:
        """Dense boolean mask for the week-aligned window ``[lo_hour, hi_hour)``.

        The window must start on a week boundary and span whole weeks
        (except the final, possibly short, week) because the dense
        point/hour-slice draws are keyed per week.
        """
        if lo_hour % HOURS_PER_WEEK:
            raise ValueError(f"window start {lo_hour} must be week-aligned")
        if not 0 <= lo_hour < hi_hour <= self.n_hours:
            raise ValueError(
                f"window [{lo_hour}, {hi_hour}) outside [0, {self.n_hours})"
            )
        config = self.config
        n_hours = hi_hour - lo_hour
        mask = np.zeros((self.n_sectors, n_hours, n_kpis), dtype=bool)

        for week_lo in range(lo_hour, hi_hour, HOURS_PER_WEEK):
            week = week_lo // HOURS_PER_WEEK
            week_hours = min(HOURS_PER_WEEK, hi_hour - week_lo)
            sl = slice(week_lo - lo_hour, week_lo - lo_hour + week_hours)
            rng = np.random.default_rng([self.seed, _POINT_STREAM, week])
            mask[:, sl, :] |= (
                rng.random((self.n_sectors, week_hours, n_kpis)) < config.point_rate
            )
            rng = np.random.default_rng([self.seed, _HOUR_SLICE_STREAM, week])
            hour_slices = rng.random((self.n_sectors, week_hours)) < config.hour_slice_rate
            mask[:, sl, :] |= hour_slices[:, :, None]

        live = (self.block_lo < hi_hour) & (self.block_hi > lo_hour)
        for sector, lo, hi in zip(
            self.block_sector[live],
            np.maximum(self.block_lo[live], lo_hour) - lo_hour,
            np.minimum(self.block_hi[live], hi_hour) - lo_hour,
        ):
            mask[sector, lo:hi, :] = True

        live = (self.dead_hour >= lo_hour) & (self.dead_hour < hi_hour)
        mask[self.dead_sector[live], self.dead_hour[live] - lo_hour, :] = True
        return mask


def plan_missingness(
    config: MissingnessConfig,
    seed: int,
    n_sectors: int,
    n_hours: int,
) -> MissingnessPlan:
    """Plan the structural missingness shapes for the whole horizon.

    Mirrors the block and dead-sector processes of
    :func:`inject_missingness` (same rates and duration distributions),
    drawn from per-week / static child streams of *seed*.
    """
    n_weeks = max(n_hours // HOURS_PER_WEEK, 1)
    expected_blocks = config.block_rate_per_week * n_weeks
    hourly_block_prob = expected_blocks / n_hours
    duration_p = 1.0 / max(config.block_duration_mean_hours, 1.0)

    block_events: list[tuple[int, int, int]] = []
    for week in range(-(-n_hours // HOURS_PER_WEEK)):
        week_lo = week * HOURS_PER_WEEK
        week_hours = min(HOURS_PER_WEEK, n_hours - week_lo)
        rng = np.random.default_rng([seed, _BLOCK_STREAM, week])
        starts = rng.random((n_sectors, week_hours)) < hourly_block_prob
        for sector, hour in zip(*np.nonzero(starts)):
            duration = int(rng.geometric(duration_p))
            lo = week_lo + int(hour)
            block_events.append((int(sector), lo, min(lo + duration, n_hours)))

    dead_sectors_hours: list[tuple[int, int]] = []
    n_dead = int(round(config.dead_sector_fraction * n_sectors))
    if n_dead > 0 and n_weeks >= 1:
        rng = np.random.default_rng([seed, _DEAD_STREAM])
        dead_sectors = rng.choice(n_sectors, size=n_dead, replace=False)
        for sector in dead_sectors:
            n_bad_weeks = int(
                rng.integers(config.dead_sector_min_weeks, max(n_weeks // 2, 2))
            )
            start_week = int(rng.integers(0, max(n_weeks - n_bad_weeks, 1)))
            lo = start_week * HOURS_PER_WEEK
            hi = min((start_week + n_bad_weeks) * HOURS_PER_WEEK, n_hours)
            week_hours = rng.random(hi - lo) < 0.7
            for hour in np.nonzero(week_hours)[0]:
                dead_sectors_hours.append((int(sector), lo + int(hour)))

    def _columns(events: list, width: int) -> tuple[np.ndarray, ...]:
        if events:
            return tuple(np.asarray(col, dtype=np.int64) for col in zip(*events))
        return tuple(np.empty(0, dtype=np.int64) for _ in range(width))

    block_sector, block_lo, block_hi = _columns(block_events, 3)
    dead_sector, dead_hour = _columns(dead_sectors_hours, 2)
    return MissingnessPlan(
        config=config,
        seed=int(seed),
        n_sectors=n_sectors,
        n_hours=n_hours,
        block_sector=block_sector,
        block_lo=block_lo,
        block_hi=block_hi,
        dead_sector=dead_sector,
        dead_hour=dead_hour,
    )
