"""Enriched calendar information (paper Sec. II-B).

The paper enriches the timestamp into five hourly signals forming the
``m_h x 5`` matrix ``C``: (1) hour of the day, (2) day of the week,
(3) day of the month, (4) weekend flag, (5) holiday flag.  Signals
(2)-(5) are natively daily and are brute-force upsampled to hourly
resolution.

Holidays default to the ones falling inside the paper's measurement
window (Nov 30 2015 – Apr 3 2016 for a Western-European country): the
Christmas / New Year block, Epiphany, and Easter week, expressed as
zero-based day offsets from the Monday the data starts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.tensor import HOURS_PER_DAY, TimeAxis

__all__ = ["CalendarConfig", "default_holidays", "build_calendar"]


def default_holidays(n_days: int) -> tuple[int, ...]:
    """Default holiday day-offsets for a window starting Mon Nov 30 2015.

    Offsets (0 = Nov 30 2015): Dec 8 (Immaculate Conception, day 8),
    Dec 25 (day 25), Dec 26 (day 26), Jan 1 (day 32), Jan 6 (Epiphany,
    day 37), Mar 25 (Good Friday, day 116), Mar 28 (Easter Monday,
    day 119).  Only offsets inside ``[0, n_days)`` are returned, so the
    same function works for shorter synthetic windows.
    """
    candidates = (8, 25, 26, 32, 37, 116, 119)
    return tuple(day for day in candidates if day < n_days)


@dataclass(frozen=True)
class CalendarConfig:
    """Calendar construction parameters.

    Attributes
    ----------
    holidays:
        Zero-based day offsets flagged as holidays.  ``None`` selects
        :func:`default_holidays` for the generated window length.
    start_day_of_month:
        Day-of-month of day 0 (the paper's window starts Nov 30, so 30).
    days_in_month_cycle:
        Simplified month length used to roll the day-of-month signal.
    """

    holidays: tuple[int, ...] | None = None
    start_day_of_month: int = 30
    days_in_month_cycle: int = 30

    def resolve_holidays(self, n_days: int) -> tuple[int, ...]:
        if self.holidays is None:
            return default_holidays(n_days)
        out_of_range = [d for d in self.holidays if not 0 <= d < n_days]
        if out_of_range:
            raise ValueError(f"holiday offsets out of range [0, {n_days}): {out_of_range}")
        return tuple(self.holidays)


def build_calendar(time_axis: TimeAxis, config: CalendarConfig | None = None) -> np.ndarray:
    """Build the enriched calendar matrix ``C``.

    Parameters
    ----------
    time_axis:
        Hourly time axis of the data set.
    config:
        Optional calendar configuration.

    Returns
    -------
    numpy.ndarray
        Shape ``(m_h, 5)`` float matrix with columns: hour-of-day
        (0..23), day-of-week (0..6, 0 = Monday), day-of-month (1..31),
        weekend flag (0/1), holiday flag (0/1).
    """
    config = config or CalendarConfig()
    n_days = max(time_axis.n_days, 1)
    holidays = set(config.resolve_holidays(n_days))

    hour_of_day = time_axis.hour_of_day().astype(np.float64)
    day_of_week = time_axis.day_of_week().astype(np.float64)
    day_index = time_axis.day_index()
    day_of_month = (
        (day_index + config.start_day_of_month - 1) % config.days_in_month_cycle + 1
    ).astype(np.float64)
    weekend = time_axis.is_weekend().astype(np.float64)
    holiday = np.isin(day_index, list(holidays)).astype(np.float64)
    return np.column_stack([hour_of_day, day_of_week, day_of_month, weekend, holiday])
