"""Latent demand profiles per land-use class.

Each land-use class has a characteristic diurnal profile (24 hourly
multipliers) and a weekly modulation (7 daily multipliers).  The product
of the two, plus holiday adjustments, shapes the latent load each sector
carries hour by hour.  These profiles implant the regular hot spot
patterns the paper observes:

* business sectors peak Monday–Friday in office hours (M T W T F pattern,
  rank 3 in paper Table II);
* commercial sectors peak Monday–Saturday afternoons with extra demand
  around shopping holidays (M–Sa pattern, plus Fig. 1B spikes);
* residential and nightlife sectors carry evening/weekend demand
  (weekend-only patterns);
* transport sectors peak at commute hours, Monday–Friday, including the
  15–18 h window the paper's feature-importance analysis highlights;
* rural sectors stay far below capacity.
"""

from __future__ import annotations

import numpy as np

from repro.synth.geography import LandUse

__all__ = ["LoadProfileLibrary"]


def _smooth_diurnal(peaks: list[tuple[float, float, float]], base: float) -> np.ndarray:
    """Build a 24-hour profile as a sum of wrapped Gaussian bumps.

    Each peak is ``(centre_hour, width_hours, amplitude)``.
    """
    hours = np.arange(24, dtype=np.float64)
    profile = np.full(24, base, dtype=np.float64)
    for centre, width, amplitude in peaks:
        delta = np.minimum(np.abs(hours - centre), 24.0 - np.abs(hours - centre))
        profile += amplitude * np.exp(-0.5 * (delta / width) ** 2)
    return profile


# Diurnal shapes: tuples of (centre hour, width, amplitude) over a base
# level.  Every non-nightlife class carries a broad "awake" plateau
# (roughly 9-22 h) on top of its characteristic peaks, so loaded sectors
# stay hot for most of the waking day — the source of the ~16-hours-per-
# day mode the paper finds (Fig. 6A, an 8-hour sleeping pattern).
_DIURNAL = {
    LandUse.RESIDENTIAL: _smooth_diurnal(
        [(20.5, 2.5, 1.0), (8.0, 1.5, 0.3), (14.5, 5.5, 0.55)], base=0.18
    ),
    LandUse.BUSINESS: _smooth_diurnal(
        [(11.0, 2.0, 1.0), (16.0, 2.0, 0.9), (13.5, 5.0, 0.45)], base=0.12
    ),
    LandUse.COMMERCIAL: _smooth_diurnal(
        [(17.0, 2.5, 1.0), (12.0, 1.5, 0.6), (14.5, 5.0, 0.5)], base=0.14
    ),
    LandUse.TRANSPORT: _smooth_diurnal(
        [(8.0, 1.2, 1.0), (17.5, 1.5, 1.1), (13.0, 5.0, 0.5)], base=0.12
    ),
    LandUse.NIGHTLIFE: _smooth_diurnal([(23.0, 2.0, 1.0), (2.0, 2.0, 0.8)], base=0.12),
    LandUse.RURAL: _smooth_diurnal([(13.0, 4.0, 0.4)], base=0.15),
}

# Weekly modulation, Monday-first (index 0 = Monday ... 6 = Sunday).
_WEEKLY = {
    LandUse.RESIDENTIAL: np.array([0.82, 0.82, 0.84, 0.88, 0.96, 1.00, 0.93]),
    LandUse.BUSINESS: np.array([1.00, 1.00, 1.00, 0.99, 1.00, 0.35, 0.25]),
    LandUse.COMMERCIAL: np.array([0.85, 0.85, 0.88, 0.90, 1.00, 1.05, 0.40]),
    LandUse.TRANSPORT: np.array([1.00, 1.00, 1.00, 1.00, 1.00, 0.55, 0.45]),
    LandUse.NIGHTLIFE: np.array([0.35, 0.35, 0.45, 0.60, 1.00, 1.10, 0.70]),
    LandUse.RURAL: np.array([0.80, 0.80, 0.80, 0.80, 0.85, 1.00, 1.00]),
}

# Holiday behaviour: demand multiplier applied on holiday days.
_HOLIDAY_FACTOR = {
    LandUse.RESIDENTIAL: 1.15,
    LandUse.BUSINESS: 0.35,
    LandUse.COMMERCIAL: 1.30,
    LandUse.TRANSPORT: 0.60,
    LandUse.NIGHTLIFE: 1.20,
    LandUse.RURAL: 1.10,
}


class LoadProfileLibrary:
    """Deterministic latent-load profiles per land-use class.

    The library is stateless; randomness (per-sector base load, noise) is
    applied by the generator on top of these deterministic shapes.
    """

    def diurnal(self, land_use: int) -> np.ndarray:
        """24-hour demand multipliers for a land-use class, max-normalised."""
        profile = _DIURNAL[LandUse(land_use)]
        return profile / profile.max()

    def weekly(self, land_use: int) -> np.ndarray:
        """7-day (Monday-first) demand multipliers for a land-use class."""
        return _WEEKLY[LandUse(land_use)].copy()

    def holiday_factor(self, land_use: int) -> float:
        """Demand multiplier applied on holidays."""
        return float(_HOLIDAY_FACTOR[LandUse(land_use)])

    def hourly_load(
        self,
        land_use: int,
        hour_of_day: np.ndarray,
        day_of_week: np.ndarray,
        holiday: np.ndarray,
    ) -> np.ndarray:
        """Latent relative load for every hour of the time axis.

        Parameters
        ----------
        land_use:
            Land-use class of the sector.
        hour_of_day, day_of_week, holiday:
            Hourly calendar signals (see
            :func:`repro.synth.calendar_info.build_calendar`).

        Returns
        -------
        numpy.ndarray
            Relative load in ``[0, ~1.3]`` per hour.
        """
        diurnal = self.diurnal(land_use)[np.asarray(hour_of_day, dtype=np.int64)]
        weekly = self.weekly(land_use)[np.asarray(day_of_week, dtype=np.int64)]
        load = diurnal * weekly
        holiday = np.asarray(holiday, dtype=bool)
        if holiday.any():
            load = np.where(holiday, load * self.holiday_factor(land_use), load)
        return load
