"""Synthetic cellular telemetry substrate.

The paper evaluates on proprietary operator telemetry: 21 hourly KPIs for
tens of thousands of 3G sectors over 18 weeks.  This subpackage generates
a synthetic equivalent that implants the structural mechanisms the
paper's analyses and forecasts rely on:

* land-use dependent diurnal and weekly load profiles (regular hot spot
  patterns: workday, weekend, single-day);
* non-regular events: hardware failures, congestion storms, interference
  episodes, and special-day demand spikes (paper Fig. 1B);
* *emerging persistent degradations* with a multi-day precursor ramp in
  usage/congestion KPIs — the mechanism that makes the paper's
  "become a hot spot" target learnable from KPIs at moderate horizons;
* same-tower fault sharing and land-use twins at arbitrary distance
  (the spatial correlation structure of paper Fig. 8);
* realistic missingness (point, hour-slice, and multi-hour block), plus a
  few effectively dead sectors to exercise the >50 %-missing filter.

Entry point: :class:`repro.synth.generator.TelemetryGenerator`.
"""

from repro.synth.calendar_info import CalendarConfig, build_calendar, default_holidays
from repro.synth.config import (
    SIZE_TIERS,
    EventConfig,
    GeneratorConfig,
    MissingnessConfig,
    SizeTier,
    tier_config,
)
from repro.synth.drift import drift_shifted_dataset, intensified_events
from repro.synth.events import EventPlan, plan_events
from repro.synth.generator import TelemetryGenerator, WorldChunk, generate_dataset
from repro.synth.geography import LAND_USE_NAMES, LandUse, NetworkGeographyBuilder
from repro.synth.kpis import KPI_CLASSES, KPI_NAMES, KPICatalog
from repro.synth.missing import MissingnessPlan, plan_missingness
from repro.synth.profiles import LoadProfileLibrary

__all__ = [
    "CalendarConfig",
    "EventConfig",
    "EventPlan",
    "GeneratorConfig",
    "KPICatalog",
    "KPI_CLASSES",
    "KPI_NAMES",
    "LAND_USE_NAMES",
    "LandUse",
    "LoadProfileLibrary",
    "MissingnessConfig",
    "MissingnessPlan",
    "NetworkGeographyBuilder",
    "SIZE_TIERS",
    "SizeTier",
    "TelemetryGenerator",
    "WorldChunk",
    "build_calendar",
    "default_holidays",
    "drift_shifted_dataset",
    "generate_dataset",
    "intensified_events",
    "plan_events",
    "plan_missingness",
    "tier_config",
]
