"""Durable, idempotent event journal backing the SSE alert stream.

The gateway's parity contract — the SSE stream is bitwise identical to
the offline replay, at every kill point — rests on one invariant: **an
hour's events are durably captured before the engine's WAL acknowledges
the hour**.  The guard/coordinator event taps fire with each hour's
final event list just before the WAL append (see
:attr:`~repro.resilience.guard.ResilientHotSpotService.event_tap`), and
they point here.

:class:`EventJournal` is an append-only JSONL file of records::

    {"hour": 17, "first_id": 42, "events": [{...}, {...}]}

Event ids are assigned densely in append order (event *j* of a record
has id ``first_id + j``), which makes them the SSE ``Last-Event-ID``
clock: a reconnecting subscriber replays everything after the last id
it saw and the stream resumes without loss or duplication.

Crash windows:

* **crash before the WAL append** — the hour is absent from the engine
  journal, so recovery re-drives it; the tap fires again with a
  recomputed (identical) event list and :meth:`record_hour` *dedups by
  hour*, handing back the previously assigned ids instead of
  re-appending.  Re-delivery is the subscriber's dedup problem (ids
  make it trivial), double-journaling never happens.
* **crash mid-append** — the torn tail line is dropped on reload.
  Because the tap fires *before* the WAL append, a torn record always
  belongs to an hour the engine never acknowledged, so the re-driven
  hour re-records it; nothing acknowledged is ever lost.
* **crash after the WAL append, before SSE delivery** — the events are
  already on disk here; restart serves them via ``Last-Event-ID``
  replay.

Events that do not belong to an applied hour (quarantines, duplicate
reconciliations) are journaled as *transient* records (``hour: null``)
so the live stream can still carry them; they take ids like any other
record but are exempt from hour dedup.

The journal is written from the gateway's single ingest worker thread
and read (replay) from the event loop; a lock covers both.  A bounded
in-memory tail keeps the common replay path off the disk; older ids
fall back to re-reading the file.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path

__all__ = ["EventJournal"]


class EventJournal:
    """Append-only event log with stable ids and per-hour idempotency.

    Parameters
    ----------
    path:
        JSONL file to persist to.  ``None`` keeps the journal purely
        in memory (no durability — embedded/test use only); all records
        are then retained regardless of *cache_records*.
    cache_records:
        Number of most-recent records kept in memory for lock-cheap
        replay; older ``Last-Event-ID`` values re-read the file.
    """

    def __init__(self, path: str | Path | None = None, cache_records: int = 4096) -> None:
        if cache_records < 1:
            raise ValueError(f"cache_records must be >= 1, got {cache_records}")
        self.path = Path(path) if path is not None else None
        self.cache_records = cache_records
        self._lock = threading.Lock()
        self._records: deque[dict] = deque()
        #: First event id still held in the in-memory tail (0 = all).
        self._cache_start_id = 0
        self._hour_first_id: dict[int, int] = {}
        self._hour_sizes: dict[int, int] = {}
        #: Id the next appended event will take (== total events ever).
        self.next_id = 0
        #: Highest hour ever recorded (-1 before the first).
        self.last_hour = -1
        self.records_appended = 0
        self.torn_tail_dropped = 0
        self._fh = None
        if self.path is not None:
            self._load()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    # -------------------------------------------------------------- load
    def _load(self) -> None:
        """Rebuild state from disk, truncating a torn tail in place."""
        if not self.path.exists():
            return
        valid_end = 0
        with open(self.path, "rb") as fh:
            offset = 0
            for raw in fh:
                end = offset + len(raw)
                try:
                    record = json.loads(raw.decode("utf-8"))
                    first = record["first_id"]
                    events = record["events"]
                except (ValueError, KeyError, UnicodeDecodeError):
                    # A torn line can only be the tail of an append-only
                    # file; everything from here on is discarded.  The
                    # tap-before-WAL ordering guarantees the dropped
                    # record's hour was never acknowledged by the
                    # engine, so it will be re-driven and re-recorded.
                    self.torn_tail_dropped += 1
                    break
                self._index(record)
                self._records.append(record)
                self.next_id = first + len(events)
                self.records_appended += 1
                valid_end = end
                offset = end
            else:
                return  # every line parsed; no truncation needed
        with open(self.path, "r+b") as fh:
            fh.truncate(valid_end)
        self._trim_cache()

    def _index(self, record: dict) -> None:
        hour = record["hour"]
        if hour is not None:
            self._hour_first_id[hour] = record["first_id"]
            self._hour_sizes[hour] = len(record["events"])
            if hour > self.last_hour:
                self.last_hour = hour

    def _trim_cache(self) -> None:
        # The in-memory tail only matters when a file backs the journal;
        # a memory-only journal keeps everything (it has no fallback).
        if self.path is None:
            return
        while len(self._records) > self.cache_records:
            evicted = self._records.popleft()
            self._cache_start_id = self._records[0]["first_id"] if self._records else (
                evicted["first_id"] + len(evicted["events"])
            )

    # ------------------------------------------------------------ append
    def record_hour(self, hour: int, events: list[dict]) -> list[tuple[int, dict]]:
        """Durably record *events* for *hour*; returns ``(id, event)`` pairs.

        Idempotent per hour: a re-driven hour (crash recovery re-sends
        the tick, the tap recomputes the identical list) gets back the
        ids assigned on first record without touching the file.  Empty
        event lists are not journaled and consume no ids.
        """
        if not events:
            return []
        hour = int(hour)
        with self._lock:
            first = self._hour_first_id.get(hour)
            if first is not None:
                if len(events) != self._hour_sizes[hour]:
                    raise ValueError(
                        f"hour {hour} re-recorded with {len(events)} events, "
                        f"journal holds {self._hour_sizes[hour]} — replayed "
                        "ticks must recompute identical event lists"
                    )
                return [(first + i, event) for i, event in enumerate(events)]
            return self._append(hour, events)

    def record_transient(self, events: list[dict]) -> list[tuple[int, dict]]:
        """Record events not tied to an applied hour (quarantine, dup)."""
        if not events:
            return []
        with self._lock:
            return self._append(None, events)

    def _append(self, hour: int | None, events: list[dict]) -> list[tuple[int, dict]]:
        record = {"hour": hour, "first_id": self.next_id, "events": events}
        if self._fh is not None:
            # One buffered write + flush per record: the line reaches the
            # page cache whole, so a SIGKILL never interleaves records
            # (a torn line can only be the final one).
            self._fh.write(json.dumps(record) + "\n")
            self._fh.flush()
        self._index(record)
        self._records.append(record)
        self._trim_cache()
        first = self.next_id
        self.next_id = first + len(events)
        self.records_appended += 1
        return [(first + i, event) for i, event in enumerate(events)]

    # ------------------------------------------------------------ replay
    def replay(self, after_id: int = -1) -> list[tuple[int, dict]]:
        """Every ``(id, event)`` with ``id > after_id``, in id order.

        Serves from the in-memory tail when it reaches back far enough,
        otherwise re-reads the file (ids older than the cache window).
        """
        with self._lock:
            if after_id + 1 >= self._cache_start_id:
                records = list(self._records)
            else:
                records = self._read_file_records()
        out: list[tuple[int, dict]] = []
        for record in records:
            first = record["first_id"]
            events = record["events"]
            if first + len(events) <= after_id + 1:
                continue
            for i, event in enumerate(events):
                if first + i > after_id:
                    out.append((first + i, event))
        return out

    def _read_file_records(self) -> list[dict]:
        records: list[dict] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for raw in fh:
                try:
                    records.append(json.loads(raw))
                except ValueError:
                    break  # concurrent append's partial tail; it is in the cache
        return records

    # ------------------------------------------------------------- admin
    @property
    def hours_recorded(self) -> int:
        return len(self._hour_first_id)

    def stats(self) -> dict:
        with self._lock:
            return {
                "next_event_id": self.next_id,
                "records": self.records_appended,
                "hours_recorded": len(self._hour_first_id),
                "last_hour": self.last_hour,
                "torn_tail_dropped": self.torn_tail_dropped,
                "path": str(self.path) if self.path is not None else None,
            }

    def close(self) -> None:
        with self._lock:
            fh, self._fh = self._fh, None
            if fh is not None:
                fh.flush()
                fh.close()

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
