"""repro.gateway — async HTTP/SSE service surface (DESIGN.md §3j).

A stdlib-``asyncio`` front end that puts the serving stacks behind four
endpoints — ``POST /ticks`` (backpressured JSONL ingest), ``GET
/alerts`` (SSE with ``Last-Event-ID`` resume), ``GET /metrics``
(Prometheus text), and ``GET /status`` (operator JSON) — while keeping
the headline invariant of every serving layer before it: the delivered
alert stream is bitwise identical to the offline replay of the same
ticks, at every kill point.
"""

from repro.gateway.backends import FleetBackend, PlainBackend, ResilientBackend
from repro.gateway.journal import EventJournal
from repro.gateway.metrics import render_prometheus, validate_exposition
from repro.gateway.server import GatewayConfig, GatewayThread, HotSpotGateway
from repro.gateway.sse import SseHub, SseSubscriber, format_frame

__all__ = [
    "EventJournal",
    "FleetBackend",
    "GatewayConfig",
    "GatewayThread",
    "HotSpotGateway",
    "PlainBackend",
    "ResilientBackend",
    "SseHub",
    "SseSubscriber",
    "format_frame",
    "render_prometheus",
    "validate_exposition",
]
