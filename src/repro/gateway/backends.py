"""Engine adapters: one uniform surface over the three serving stacks.

The gateway's HTTP layer speaks to a *backend* — a thin adapter that
normalises :class:`~repro.serve.service.HotSpotService`,
:class:`~repro.resilience.guard.ResilientHotSpotService`, and
:class:`~repro.fleet.coordinator.FleetCoordinator` behind five verbs:

``submit``
    apply one tick (runs on the gateway's single ingest worker thread,
    so per-hour ordering is preserved end to end);
``install_tap``
    point the engine's pre-acknowledge event tap at the gateway's
    durable journal;
``clock``
    the engine's hour clock — also the client-facing *resume hour*: a
    client that re-POSTs its stream from here after a gateway crash
    produces zero duplicate verdicts and a bitwise-identical SSE tail;
``gauge_samples`` / ``telemetry_snapshot``
    point-in-time gauges and the counter/histogram source for
    ``GET /metrics``;
``status``
    the operator JSON for ``GET /status`` (champion + provenance and
    shadow Δ when a lifecycle controller is attached, quarantine
    depth, dark sectors, shard table with degraded/restart state).
"""

from __future__ import annotations

from repro.serve.telemetry import ServeTelemetry

__all__ = ["PlainBackend", "ResilientBackend", "FleetBackend"]


class PlainBackend:
    """Bare :class:`HotSpotService` — no validation, WAL, or masking.

    The tap fires with each ingested hour's events to keep the SSE
    journal populated, but without an engine WAL behind it the
    crash-resume parity contract does not apply (documented; the CLI
    always builds the resilient or fleet backend).
    """

    name = "plain"

    def __init__(self, service) -> None:
        self.service = service
        self.event_tap = None

    def install_tap(self, tap) -> None:
        self.event_tap = tap

    @property
    def clock(self) -> int:
        return self.service.engine.ingestor.hours_seen

    def submit(self, values, missing, calendar_row, hour=None) -> list[dict]:
        hour_now = self.clock
        events = self.service.ingest_hour(values, missing, calendar_row)
        if self.event_tap is not None:
            self.event_tap(hour_now, events)
        return events

    def telemetry_snapshot(self) -> ServeTelemetry:
        return self.service.telemetry

    def gauge_samples(self) -> list:
        return [("clock_hours", None, self.clock)]

    def stats(self) -> dict:
        return self.service.stats()

    def status(self) -> dict:
        return {"backend": self.name, "clock": self.clock}

    def close(self) -> None:
        pass


class ResilientBackend:
    """Single guarded engine, optionally with a lifecycle controller."""

    name = "resilient"

    def __init__(self, guarded, controller=None) -> None:
        self.guarded = guarded
        self.controller = controller

    def install_tap(self, tap) -> None:
        self.guarded.event_tap = tap

    @property
    def clock(self) -> int:
        return self.guarded.ingestor.hours_seen

    def submit(self, values, missing, calendar_row, hour=None) -> list[dict]:
        return self.guarded.submit_tick(values, missing, calendar_row, hour=hour)

    def telemetry_snapshot(self) -> ServeTelemetry:
        return self.guarded.telemetry

    def gauge_samples(self) -> list:
        dlq = self.guarded.dead_letters
        samples = [
            ("clock_hours", None, self.clock),
            ("dlq_depth", None, len(dlq)),
            ("dark_sectors", None, int(self.guarded.dark.dark_mask.sum())),
        ]
        if self.controller is not None:
            state = self.controller.state
            samples.append(
                ("lifecycle_champion_version", None, state.champion_version)
            )
            samples.append(
                ("lifecycle_phase", {"phase": state.phase}, 1)
            )
            samples.append(
                ("lifecycle_shadow_days", None, len(state.shadow_rows))
            )
        return samples

    def stats(self) -> dict:
        return self.guarded.stats()

    def status(self) -> dict:
        stats = self.guarded.stats()
        status = {
            "backend": self.name,
            "clock": self.clock,
            "quarantine": {
                **self.guarded.dead_letters.stats(),
                "by_reason": self.guarded.dead_letters.counts_by_reason(),
            },
            "dark_sectors": self.guarded.dark.stats(),
        }
        checkpoint = stats.get("resilience", {}).get("checkpoint")
        if checkpoint is not None:
            status["checkpoint"] = checkpoint
        if self.controller is not None:
            lifecycle = self.controller.status()
            status["lifecycle"] = {
                "phase": lifecycle["phase"],
                "champion": lifecycle["champion"],
                "shadow": lifecycle["shadow"],
                "drift_checks": lifecycle["drift_checks"],
            }
        return status

    def close(self) -> None:
        if self.guarded.checkpoint is not None:
            self.guarded.checkpoint.close()


class FleetBackend:
    """Sharded fleet behind a coordinator (incl. supervised workers)."""

    name = "fleet"

    def __init__(self, coordinator) -> None:
        self.coordinator = coordinator

    def install_tap(self, tap) -> None:
        self.coordinator.event_tap = tap

    @property
    def clock(self) -> int:
        return self.coordinator.clock

    def submit(self, values, missing, calendar_row, hour=None) -> list[dict]:
        return self.coordinator.submit_tick(values, missing, calendar_row, hour=hour)

    def telemetry_snapshot(self) -> ServeTelemetry:
        coordinator = self.coordinator
        return coordinator.telemetry.merge(coordinator.backend.telemetries())

    def gauge_samples(self) -> list:
        coordinator = self.coordinator
        backend = coordinator.backend
        degraded = set(getattr(backend, "degraded_shards", []) or [])
        samples = [
            ("clock_hours", None, self.clock),
            ("dlq_depth", None, len(coordinator.dead_letters)),
            ("fleet_shards", None, coordinator.plan.n_shards),
            ("fleet_degraded_shards", None, len(degraded)),
        ]
        for shard_id, hours in enumerate(backend.shard_hours()):
            labels = {"shard": str(shard_id)}
            samples.append(("shard_hours", labels, hours))
            samples.append(("shard_degraded", labels, int(shard_id in degraded)))
        if hasattr(backend, "supervisor_stats"):
            supervisor = backend.supervisor_stats()
            samples.append(("worker_restarts", None, supervisor["worker_restarts"]))
            samples.append(("poison_blocks", None, supervisor["poison_blocks"]))
        return samples

    def stats(self) -> dict:
        return self.coordinator.stats()

    def status(self) -> dict:
        coordinator = self.coordinator
        stats = coordinator.stats()
        fleet = stats["fleet"]
        degraded = set(getattr(coordinator.backend, "degraded_shards", []) or [])
        shard_table = [
            {
                "shard": int(shard_id),
                "hours": int(hours),
                "degraded": shard_id in degraded,
            }
            for shard_id, hours in enumerate(coordinator.backend.shard_hours())
        ]
        status = {
            "backend": self.name,
            "clock": self.clock,
            "fleet": {
                "n_shards": fleet["n_shards"],
                "generation": fleet["generation"],
                "backend": fleet["backend"],
                "shards": shard_table,
            },
            "quarantine": {
                **coordinator.dead_letters.stats(),
                "by_reason": coordinator.dead_letters.counts_by_reason(),
            },
        }
        if "supervisor" in fleet:
            status["fleet"]["supervisor"] = fleet["supervisor"]
        return status

    def close(self) -> None:
        self.coordinator.close()
