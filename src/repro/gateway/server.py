"""Stdlib-asyncio HTTP/SSE front end for the hot-spot serving stacks.

:class:`HotSpotGateway` exposes any backend adapter
(:mod:`repro.gateway.backends`) over four endpoints:

``POST /ticks``
    JSONL tick ingest.  Each line is ``{"op": "tick", "values": [...],
    "missing": [...], "calendar": [...], "hour": H}`` (``op`` defaults
    to ``tick``).  Ticks flow through a bounded ingest queue into a
    **single** worker, which applies them on a one-thread executor —
    per-hour ordering is preserved end to end and the event loop never
    blocks on numpy.  When the queue cannot take the whole batch the
    request is rejected with ``429`` + ``Retry-After`` *before*
    anything is enqueued (all-or-nothing, so a rejected client simply
    retries the same batch).  The 200 response is sent only after every
    tick in the batch is applied **and** its events are journaled — the
    acknowledge ordering is apply → event-journal → WAL → HTTP 200, so
    a crashed gateway may re-process a tick but never acknowledges a
    lost one.

``GET /alerts``
    SSE stream of the event journal.  ``Last-Event-ID`` (header or
    ``?last_event_id=`` query, ``-1`` for everything) resumes from the
    journal clock; without it the stream starts live.  Per-subscriber
    buffers are bounded (:mod:`repro.gateway.sse`): a stalled consumer
    drops oldest events from *its own* buffer only and recovers them by
    reconnecting with the last id it saw.

``GET /metrics``
    Prometheus text exposition: the backend's counters/histograms under
    ``repro_*``, its point-in-time gauges (DLQ depth, dark sectors,
    per-shard restart/degraded state), and the gateway's own
    instruments under ``repro_gateway_*``.

``GET /status``
    Operator JSON: backend view (champion + provenance, shadow Δ,
    quarantine counts, shard table), the journal watermark, ingest
    queue depth, SSE subscriber state, and ``resume_hour`` — the hour a
    client should re-POST from after a gateway restart.

The HTTP layer is deliberately small: request-line + headers +
``Content-Length`` bodies, keep-alive, no TLS/chunked encoding — it is
an operator surface, not a general web server.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.gateway.journal import EventJournal
from repro.gateway.metrics import render_prometheus
from repro.gateway.sse import SseHub, format_frame
from repro.serve.telemetry import ServeTelemetry

__all__ = ["GatewayConfig", "HotSpotGateway", "GatewayThread"]

_SHUTDOWN = object()


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables for the HTTP surface."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; the bound port is on the gateway
    queue_capacity: int = 256  #: max queued ticks before 429
    sse_buffer: int = 256  #: pending events per SSE subscriber
    max_body_bytes: int = 32 * 1024 * 1024
    retry_after_secs: int = 1

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.sse_buffer < 1:
            raise ValueError(f"sse_buffer must be >= 1, got {self.sse_buffer}")
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {self.max_body_bytes}")


class HotSpotGateway:
    """Async HTTP/SSE service over one backend adapter + event journal."""

    def __init__(
        self,
        backend,
        journal: EventJournal | None = None,
        config: GatewayConfig | None = None,
        telemetry: ServeTelemetry | None = None,
    ) -> None:
        self.backend = backend
        self.journal = journal if journal is not None else EventJournal()
        self.config = config or GatewayConfig()
        #: Gateway-local instruments (HTTP/queue/SSE); the backend's
        #: telemetry stays untouched so engine parity is unaffected.
        self.telemetry = telemetry or ServeTelemetry()
        self.hub = SseHub(telemetry=self.telemetry, buffer=self.config.sse_buffer)
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._sse_tasks: set[asyncio.Task] = set()
        self._stopping = False
        # Exactly one worker thread: ticks apply strictly in queue order,
        # which is what keeps the hour clock (and hence parity) intact.
        self._pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="gw-ingest")
        #: (id, event) pairs captured by the journal tap during the
        #: current submit; only the ingest worker thread touches it.
        self._tap_pairs: list[tuple[int, dict]] = []
        backend.install_tap(self._tap)

    # --------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._worker = self._loop.create_task(self._ingest_worker())
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]

    async def stop(self) -> None:
        """Drain queued ticks, close subscribers, release the journal."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker is not None:
            await self._queue.put((_SHUTDOWN, None))
            await self._worker
        for task in list(self._sse_tasks):
            task.cancel()
        if self._sse_tasks:
            await asyncio.gather(*self._sse_tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)
        self.journal.close()

    async def run_until(self, stop_event: asyncio.Event) -> None:
        """Serve until *stop_event* fires, then drain and stop."""
        await self.start()
        await stop_event.wait()
        await self.stop()

    # ------------------------------------------------------------ ingest
    def _tap(self, hour: int, events: list[dict]) -> None:
        # Ingest-worker thread, called by the engine pre-WAL-append.
        self._tap_pairs.extend(self.journal.record_hour(hour, events))

    def _apply(self, op: dict) -> tuple[list[tuple[int, dict]], list[dict]]:
        """Apply one tick on the worker thread; returns (pairs, events)."""
        values = np.asarray(op["values"], dtype=np.float64)
        missing = op.get("missing")
        if missing is not None:
            missing = np.asarray(missing, dtype=bool)
        calendar = op.get("calendar")
        if calendar is not None:
            calendar = np.asarray(calendar, dtype=np.float64)
        hour = op.get("hour")
        self._tap_pairs = []
        with self.telemetry.timer("ingest_apply"):
            events = self.backend.submit(
                values, missing, calendar, None if hour is None else int(hour)
            )
        pairs, self._tap_pairs = self._tap_pairs, []
        tapped = [event for _, event in pairs]
        if tapped != events:
            # Events the tap never saw: quarantine/duplicate verdicts
            # (no hour was applied) or a tap-less plain backend.  They
            # still get journal ids so the SSE stream carries them.
            if tapped and events[: len(tapped)] == tapped:
                extra = events[len(tapped):]
            else:
                extra = events
            pairs = pairs + self.journal.record_transient(extra)
        self.telemetry.inc("ticks_applied")
        return pairs, events

    async def _ingest_worker(self) -> None:
        while True:
            op, future = await self._queue.get()
            if op is _SHUTDOWN:
                return
            try:
                pairs, events = await self._loop.run_in_executor(
                    self._pool, self._apply, op
                )
            except Exception as error:  # surfaced as HTTP 500 per tick
                self.telemetry.inc("ingest_errors")
                if not future.done():
                    future.set_exception(error)
            else:
                # Publish after the journal write: every frame a
                # subscriber ever sees is durable and replayable.
                self.hub.publish(pairs)
                if not future.done():
                    future.set_result((pairs, events))

    async def _post_ticks(self, body: bytes) -> tuple[str, list, bytes]:
        try:
            ops = []
            for line in body.decode("utf-8").splitlines():
                if not line.strip():
                    continue
                op = json.loads(line)
                if not isinstance(op, dict) or op.get("op", "tick") != "tick":
                    raise ValueError(f"unsupported operation: {op!r:.80}")
                if "values" not in op:
                    raise ValueError("tick is missing 'values'")
                ops.append(op)
        except (ValueError, UnicodeDecodeError) as error:
            self.telemetry.inc("http_bad_requests")
            return _json_response("400 Bad Request", {
                "error": "bad-request", "detail": str(error),
            })
        if not ops:
            return _json_response("200 OK", {"processed": 0, "results": []})
        # All-or-nothing admission: either the whole batch fits in the
        # queue's remaining capacity or none of it is enqueued.
        if self._queue.qsize() + len(ops) > self.config.queue_capacity:
            self.telemetry.inc("ticks_rejected", len(ops))
            return _json_response(
                "429 Too Many Requests",
                {
                    "error": "backpressure",
                    "queue_depth": self._queue.qsize(),
                    "queue_capacity": self.config.queue_capacity,
                    "retry_after_secs": self.config.retry_after_secs,
                },
                extra_headers=[("Retry-After", str(self.config.retry_after_secs))],
            )
        futures = []
        for op in ops:
            future = self._loop.create_future()
            self._queue.put_nowait((op, future))
            futures.append(future)
        results = []
        for future in futures:
            try:
                pairs, events = await future
            except Exception as error:
                # Earlier ticks in the batch are applied and journaled;
                # the client resumes from /status's resume_hour as after
                # a crash.
                return _json_response("500 Internal Server Error", {
                    "error": "apply-failed",
                    "detail": str(error),
                    "processed": len(results),
                })
            results.append({
                "events": events,
                "event_ids": [event_id for event_id, _ in pairs],
            })
        return _json_response("200 OK", {
            "processed": len(results),
            "clock": self.backend.clock,
            "last_event_id": self.journal.next_id - 1,
            "results": results,
        })

    # ------------------------------------------------------------ status
    def status(self) -> dict:
        status = {"service": "hotspot-gateway", **self.backend.status()}
        # The client-side crash-resume contract: re-POST the tick stream
        # from this hour and the SSE tail continues bitwise (re-sent
        # hours dedup in the journal, nothing applied twice).
        status["resume_hour"] = self.backend.clock
        status["journal"] = self.journal.stats()
        status["ingest"] = {
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_capacity": self.config.queue_capacity,
            "applied": self.telemetry.counter("ticks_applied"),
            "rejected": self.telemetry.counter("ticks_rejected"),
        }
        status["sse"] = {
            "subscribers": self.hub.subscriber_count,
            "dropped_events": self.hub.dropped_events,
            "buffer": self.config.sse_buffer,
        }
        return status

    def metrics_text(self) -> str:
        gateway_gauges = [
            ("ingest_queue_depth", None,
             self._queue.qsize() if self._queue is not None else 0),
            ("ingest_queue_capacity", None, self.config.queue_capacity),
            ("sse_subscribers", None, self.hub.subscriber_count),
            ("event_journal_next_id", None, self.journal.next_id),
            ("event_journal_last_hour", None, self.journal.last_hour),
        ]
        return render_prometheus(
            self.backend.telemetry_snapshot(),
            prefix="repro",
            extra_gauges=self.backend.gauge_samples(),
        ) + render_prometheus(
            self.telemetry, prefix="repro_gateway", extra_gauges=gateway_gauges
        )

    # -------------------------------------------------------------- http
    async def _handle_client(self, reader, writer) -> None:
        try:
            while not self._stopping:
                request = await _read_request(reader, self.config.max_body_bytes)
                if request is None:
                    break
                method, path, query, headers, body, version = request
                if body is None:  # oversized
                    writer.write(_assemble(*_json_response(
                        "413 Payload Too Large", {"error": "payload-too-large"},
                    )))
                    await writer.drain()
                    break
                self.telemetry.inc("http_requests")
                if method == "POST" and path == "/ticks":
                    response = await self._post_ticks(body)
                elif method == "GET" and path == "/alerts":
                    await self._serve_sse(writer, headers, query)
                    return
                elif method == "GET" and path == "/metrics":
                    text = self.metrics_text().encode("utf-8")
                    response = (
                        "200 OK",
                        [("Content-Type", "text/plain; version=0.0.4; charset=utf-8")],
                        text,
                    )
                elif method == "GET" and path == "/status":
                    response = _json_response("200 OK", self.status())
                elif method == "GET" and path == "/healthz":
                    response = _json_response("200 OK", {"ok": True})
                else:
                    self.telemetry.inc("http_not_found")
                    response = _json_response(
                        "404 Not Found", {"error": "not-found", "path": path}
                    )
                writer.write(_assemble(*response))
                await writer.drain()
                if headers.get("connection", "").lower() == "close" or version == "HTTP/1.0":
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_sse(self, writer, headers: dict, query: dict) -> None:
        raw = headers.get("last-event-id")
        if raw is None:
            raw = query.get("last_event_id", [None])[0]
        if raw is None:
            # No resume point: live tail only (everything already
            # journaled is history the client did not ask for).
            after = self.journal.next_id - 1
        else:
            try:
                after = int(raw)
            except ValueError:
                writer.write(_assemble(*_json_response(
                    "400 Bad Request",
                    {"error": "bad-request", "detail": f"bad Last-Event-ID: {raw!r}"},
                )))
                await writer.drain()
                return
        task = asyncio.current_task()
        self._sse_tasks.add(task)
        # Subscribe *before* reading the journal: anything published in
        # between lands in the pending buffer and the last_sent_id check
        # below filters what the replay already delivered.
        subscriber = self.hub.subscribe()
        subscriber.last_sent_id = after
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n"
                b"\r\n"
                b"retry: 2000\n\n"
            )
            for event_id, event in self.journal.replay(after):
                writer.write(format_frame(event_id, event))
                if event_id > subscriber.last_sent_id:
                    subscriber.last_sent_id = event_id
            await writer.drain()
            while not self._stopping:
                await subscriber.wakeup.wait()
                subscriber.wakeup.clear()
                while subscriber.pending:
                    event_id, event = subscriber.pending.popleft()
                    if event_id <= subscriber.last_sent_id:
                        continue
                    writer.write(format_frame(event_id, event))
                    subscriber.last_sent_id = event_id
                    # A stalled consumer parks here once the transport
                    # buffer fills; its pending deque keeps absorbing
                    # (and dropping) events without touching ingest.
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self.hub.unsubscribe(subscriber)
            self._sse_tasks.discard(task)


# ------------------------------------------------------------- http plumbing
async def _read_request(reader, max_body: int):
    """Parse one request; None on EOF, body=None when oversized."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    try:
        method, target, version = request_line.decode("latin-1").split()
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length") or 0)
    path, _, query_string = target.partition("?")
    query = urllib.parse.parse_qs(query_string)
    if length > max_body:
        return method, path, query, headers, None, version
    body = await reader.readexactly(length) if length else b""
    return method, path, query, headers, body, version


def _json_response(status: str, payload: dict, extra_headers: list | None = None):
    body = (json.dumps(payload) + "\n").encode("utf-8")
    headers = [("Content-Type", "application/json")] + (extra_headers or [])
    return status, headers, body


def _assemble(status: str, headers: list, body: bytes) -> bytes:
    head = f"HTTP/1.1 {status}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers
    )
    head += f"Content-Length: {len(body)}\r\n\r\n"
    return head.encode("latin-1") + body


class GatewayThread:
    """Run a gateway on a daemon thread with its own event loop.

    Embedding helper for tests and benchmarks: ``start()`` blocks until
    the port is bound, ``stop()`` drains and joins.  The CLI path uses
    :meth:`HotSpotGateway.run_until` directly on the main thread.
    """

    def __init__(self, gateway: HotSpotGateway) -> None:
        self.gateway = gateway
        self._thread = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = None
        self._error: BaseException | None = None

    def start(self, timeout: float = 30.0) -> tuple[str, int]:
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("gateway did not start in time")
        if self._error is not None:
            raise RuntimeError("gateway failed to start") from self._error
        return self.gateway.host, self.gateway.port

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced via start()/stop()
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.gateway.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.gateway.stop()

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("gateway did not stop in time")

    def __enter__(self) -> "GatewayThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
