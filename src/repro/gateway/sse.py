"""Bounded fan-out hub for the ``GET /alerts`` SSE stream.

Every subscriber owns a bounded pending deque.  :meth:`SseHub.publish`
(called from the ingest worker's event-loop side, right after an hour's
events are journaled) appends to each subscriber's deque and wakes its
writer coroutine; it never blocks and never touches the network.  A
slow consumer therefore costs ingest nothing: when its TCP window
fills, its writer coroutine parks in ``drain()``, its deque absorbs up
to ``buffer`` events, and older entries are dropped oldest-first with a
per-subscriber drop count.  Dropped events are *not* lost — they are in
the :class:`~repro.gateway.journal.EventJournal`, so the client sees a
gap in the ``id:`` sequence and reconnects with ``Last-Event-ID`` to
replay them (bitwise identical, same ids).

Each subscriber tracks ``last_sent_id`` so the server's
subscribe-then-replay-journal ordering cannot double-deliver an event
that was both replayed from the journal and published live in between.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque

from repro.serve.telemetry import ServeTelemetry

__all__ = ["SseHub", "SseSubscriber", "format_frame"]


def format_frame(event_id: int, event: dict) -> bytes:
    """One SSE frame: the event JSON with its journal id."""
    return f"id: {event_id}\ndata: {json.dumps(event)}\n\n".encode("utf-8")


class SseSubscriber:
    """One connected SSE consumer: bounded pending events + a wakeup."""

    def __init__(self, buffer: int) -> None:
        if buffer < 1:
            raise ValueError(f"buffer must be >= 1, got {buffer}")
        self.buffer = buffer
        self.pending: deque[tuple[int, dict]] = deque()
        self.wakeup = asyncio.Event()
        #: Highest event id already written to this consumer; the writer
        #: coroutine skips anything at or below it (journal-replay dedup).
        self.last_sent_id = -1
        self.dropped = 0

    def offer(self, pair: tuple[int, dict]) -> None:
        """Enqueue one ``(id, event)``, dropping the oldest when full."""
        if len(self.pending) >= self.buffer:
            self.pending.popleft()
            self.dropped += 1
        self.pending.append(pair)


class SseHub:
    """Registry of live subscribers with non-blocking publish."""

    def __init__(self, telemetry: ServeTelemetry | None = None, buffer: int = 256) -> None:
        self.telemetry = telemetry or ServeTelemetry()
        self.buffer = buffer
        self._subscribers: set[SseSubscriber] = set()
        self.total_dropped = 0

    def subscribe(self) -> SseSubscriber:
        subscriber = SseSubscriber(self.buffer)
        self._subscribers.add(subscriber)
        self.telemetry.inc("sse_connections")
        return subscriber

    def unsubscribe(self, subscriber: SseSubscriber) -> None:
        self._subscribers.discard(subscriber)
        self.total_dropped += subscriber.dropped

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    @property
    def dropped_events(self) -> int:
        """Drops across all subscribers, departed ones included."""
        return self.total_dropped + sum(s.dropped for s in self._subscribers)

    def publish(self, pairs: list[tuple[int, dict]]) -> None:
        """Fan ``(id, event)`` pairs out to every subscriber; never blocks.

        Must run on the event-loop thread (the ingest worker publishes
        after each tick's events are journaled).
        """
        if not pairs:
            return
        self.telemetry.inc("sse_events_published", len(pairs))
        for subscriber in self._subscribers:
            before = subscriber.dropped
            for pair in pairs:
                subscriber.offer(pair)
            if subscriber.dropped > before:
                self.telemetry.inc("sse_events_dropped", subscriber.dropped - before)
            subscriber.wakeup.set()

    def wake_all(self) -> None:
        """Nudge every writer coroutine (shutdown path)."""
        for subscriber in self._subscribers:
            subscriber.wakeup.set()
