"""Prometheus text exposition for :class:`~repro.serve.telemetry.ServeTelemetry`.

Renders the serving layer's counters, gauges, and latency histograms in
the `text exposition format (version 0.0.4)
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ with no
client-library dependency:

* counters → ``<prefix>_<name>_total``;
* gauges → ``<prefix>_<name>``, optionally labeled (the gateway uses
  labels for per-shard state, e.g. ``repro_shard_degraded{shard="2"}``);
* latency histograms → cumulative ``_bucket{le="..."}`` series straight
  from :attr:`LatencyHistogram.bucket_bounds` / ``bucket_counts``, plus
  ``_sum`` and ``_count``.

:func:`validate_exposition` is a strict line-level checker used by the
tests and the CI gateway job to assert the scrape output actually
parses — names legal, every ``# TYPE`` declared before its samples,
histogram buckets cumulative and capped by ``+Inf``.
"""

from __future__ import annotations

import math
import re

from repro.serve.telemetry import ServeTelemetry

__all__ = ["render_prometheus", "validate_exposition"]

#: Extra gauge samples: ``(name, labels-or-None, value)``.
GaugeSample = "tuple[str, dict[str, str] | None, float]"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _sanitize(name: str) -> str:
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _fmt(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels(labels: "dict[str, str] | None") -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_sanitize(str(key))}="{_escape(str(val))}"'
        for key, val in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(
    telemetry: ServeTelemetry,
    prefix: str = "repro",
    extra_gauges: "list[GaugeSample] | None" = None,
) -> str:
    """Render *telemetry* (plus *extra_gauges*) as Prometheus text.

    *extra_gauges* carries point-in-time readings that live outside the
    telemetry object — queue depths, per-shard flags — as
    ``(name, labels, value)`` triples; samples sharing a name render
    under one ``# TYPE`` header.
    """
    lines: list[str] = []

    for name, value in sorted(telemetry.counters().items()):
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    samples: dict[str, list[tuple["dict[str, str] | None", float]]] = {}
    for name, value in telemetry.gauges().items():
        samples.setdefault(_sanitize(name), []).append((None, value))
    for name, labels, value in extra_gauges or []:
        samples.setdefault(_sanitize(name), []).append((labels, float(value)))
    for name in sorted(samples):
        metric = f"{prefix}_{name}"
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in samples[name]:
            lines.append(f"{metric}{_labels(labels)} {_fmt(value)}")

    for name, histogram in sorted(telemetry.histograms().items()):
        metric = f"{prefix}_{_sanitize(name)}_seconds"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        counts = histogram.bucket_counts
        for bound, count in zip(histogram.bucket_bounds, counts[:-1]):
            cumulative += int(count)
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_fmt(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")

    return "\n".join(lines) + "\n" if lines else ""


def validate_exposition(text: str) -> int:
    """Strictly check Prometheus text exposition; returns the sample count.

    Raises :class:`ValueError` on the first malformed line, a sample
    whose metric family lacks a preceding ``# TYPE``, or a histogram
    whose cumulative buckets decrease or exceed their ``+Inf`` cap.
    """
    declared: dict[str, str] = {}
    bucket_last: dict[str, float] = {}
    n_samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            if not _NAME_OK.match(parts[2]):
                raise ValueError(f"line {lineno}: illegal metric name {parts[2]!r}")
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP/comment lines are free-form
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        name, labels, raw_value = match.group("name", "labels", "value")
        if labels:
            for pair in re.split(r",(?=[a-zA-Z_])", labels):
                if not _LABEL_PAIR.match(pair):
                    raise ValueError(f"line {lineno}: malformed label pair {pair!r}")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(f"line {lineno}: non-numeric value {raw_value!r}") from None
        family = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if name not in declared and family not in declared:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE declaration")
        if name.endswith("_bucket"):
            if declared.get(family) != "histogram":
                raise ValueError(f"line {lineno}: _bucket sample on non-histogram {family!r}")
            last = bucket_last.get(family, -math.inf)
            if value < last:
                raise ValueError(
                    f"line {lineno}: histogram {family!r} buckets not cumulative "
                    f"({value} < {last})"
                )
            bucket_last[family] = value
        n_samples += 1
    return n_samples
