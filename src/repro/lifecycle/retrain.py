"""Challenger retraining from the live ring buffer.

:class:`RetrainScheduler` decides *when* a challenger is due (drift
signal or fixed cadence, with a hysteresis gap between fits) and *how*
it is trained: the rolling training window is assembled directly from
the :class:`~repro.serve.ingest.StreamIngestor` ring through
:class:`RingFeatureView` — the thin adapter that satisfies the batch
:meth:`~repro.core.forecaster.HotSpotForecaster.fit` protocol
(``window()`` + ``n_hours``) — so the challenger sees bitwise the same
Eq. 5/Eq. 7 design matrix a batch refit over the same days would (the
ingestor's parity contract).

Determinism: the challenger's seed is derived from the trigger day with
the same CRC32 scheme :class:`~repro.core.experiment.SweepRunner` uses
for sweep cells, and forest fits are bitwise-identical for any
``n_jobs`` (the PR 2 guarantee) — so a crash-and-reprocess, or a replay
with a different worker count, mints an identical challenger.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.forecaster import MODEL_REGISTRY, HotSpotForecaster, make_model
from repro.core.labels import become_hot_labels
from repro.serve.ingest import StreamIngestor

__all__ = ["RetrainConfig", "RingFeatureView", "RetrainScheduler"]


class RingFeatureView:
    """Adapter exposing the ring as a batch-compatible feature tensor.

    :meth:`HotSpotForecaster.fit` only needs ``window(t_day, w)`` and
    ``n_hours``; both map one-to-one onto the ingestor.  A window that
    was already evicted from the ring (or contains missing values, e.g.
    gap-filled dark hours) raises — the scheduler reports that as a
    failed retrain rather than training on corrupt input.
    """

    def __init__(self, ingestor: StreamIngestor) -> None:
        self._ingestor = ingestor

    @property
    def n_hours(self) -> int:
        return self._ingestor.hours_seen

    def window(self, t_day: int, w_days: int) -> np.ndarray:
        return self._ingestor.feature_window(t_day, w_days)


@dataclass(frozen=True)
class RetrainConfig:
    """What a challenger is and when one is due.

    Attributes
    ----------
    model:
        Trainable model name (one of :data:`MODEL_REGISTRY`); baselines
        are stateless and never retrain.
    target:
        ``"hot"`` or ``"become"`` — the labels the challenger fits.
    horizon, window:
        The served cell's ``h`` and ``w``.
    n_estimators, n_training_days:
        Forest size and Eq. 7 training-day stack depth.
    base_seed:
        Master seed the per-trigger-day challenger seeds derive from.
    cadence_days:
        Fixed retraining cadence; 0 disables cadence triggers (drift
        only).
    min_days_between:
        Hysteresis: a new retrain (drift- or cadence-triggered) is
        suppressed until this many days passed since the last one.
    """

    model: str = "RF-F1"
    target: str = "hot"
    horizon: int = 1
    window: int = 7
    n_estimators: int = 10
    n_training_days: int = 6
    base_seed: int = 0
    cadence_days: int = 0
    min_days_between: int = 7

    def __post_init__(self) -> None:
        if self.model not in MODEL_REGISTRY:
            raise ValueError(
                f"model must be trainable ({sorted(MODEL_REGISTRY)}), "
                f"got {self.model!r}"
            )
        if self.target not in ("hot", "become"):
            raise ValueError(f"target must be 'hot' or 'become', got {self.target!r}")
        if self.horizon < 1 or self.window < 1:
            raise ValueError(
                f"horizon and window must be >= 1, got h={self.horizon}, "
                f"w={self.window}"
            )
        if self.n_estimators < 1 or self.n_training_days < 1:
            raise ValueError("n_estimators and n_training_days must be >= 1")
        if self.cadence_days < 0:
            raise ValueError(f"cadence_days must be >= 0, got {self.cadence_days}")
        if self.min_days_between < 1:
            raise ValueError(
                f"min_days_between must be >= 1, got {self.min_days_between}"
            )

    @property
    def lookback_days(self) -> int:
        """Days of ring history one fit reaches back from its trigger day."""
        return self.n_training_days + self.horizon + self.window - 1


class RetrainScheduler:
    """Trigger policy + ring-backed challenger fitting."""

    def __init__(self, config: RetrainConfig | None = None) -> None:
        self.config = config or RetrainConfig()
        self.fits = 0

    # ------------------------------------------------------------ trigger
    def seed_for(self, t_day: int) -> int:
        """Deterministic challenger seed for a retrain triggered at *t_day*.

        CRC32 (not ``hash()``) so the seed — and with it the fitted
        forest — is stable across processes and ``--jobs`` settings,
        mirroring :meth:`SweepRunner._cell_seed`.
        """
        config = self.config
        key = (
            f"{config.base_seed}|retrain|{config.model}|{t_day}"
            f"|{config.horizon}|{config.window}"
        ).encode()
        return zlib.crc32(key) % (2**31)

    def should_retrain(
        self, t_day: int, drifted: bool, last_retrain_day: int
    ) -> str | None:
        """The trigger reason for a retrain at *t_day*, or None.

        ``"drift"`` wins over ``"cadence"`` when both apply; either is
        suppressed inside the ``min_days_between`` hysteresis window.
        """
        config = self.config
        if last_retrain_day >= 0 and t_day - last_retrain_day < config.min_days_between:
            return None
        if drifted:
            return "drift"
        if config.cadence_days > 0 and (
            last_retrain_day < 0 or t_day - last_retrain_day >= config.cadence_days
        ):
            return "cadence"
        return None

    # ---------------------------------------------------------------- fit
    def fit_challenger(
        self, ingestor: StreamIngestor, t_day: int, n_jobs: int | None = 1
    ) -> HotSpotForecaster:
        """Fit a challenger at *t_day* from the rolling ring window.

        Raises :class:`ValueError` when the required window does not fit
        (too early in the stream, evicted from the ring, or containing
        missing/gap-filled hours); the controller turns that into a
        ``retrain_failed`` event and tries again on the next trigger.
        """
        config = self.config
        if t_day > ingestor.last_complete_day:
            raise ValueError(
                f"cannot retrain at day {t_day}: last complete day is "
                f"{ingestor.last_complete_day}"
            )
        features = RingFeatureView(ingestor)
        if config.target == "hot":
            targets = np.asarray(ingestor.labels_daily, dtype=np.int64)
        else:
            targets = become_hot_labels(
                ingestor.score_daily, ingestor.config.hotspot_threshold
            )
        model = make_model(
            config.model,
            n_estimators=config.n_estimators,
            n_training_days=config.n_training_days,
            random_state=self.seed_for(t_day),
            n_jobs=n_jobs,
        )
        model.fit(features, targets, t_day, config.horizon, config.window)
        self.fits += 1
        return model
