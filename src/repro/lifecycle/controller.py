"""The lifecycle control plane: drift → retrain → shadow → promote.

:class:`LifecycleController` owns one served ``(model, horizon,
window)`` cell and plugs into the serving loop through
:meth:`~repro.serve.service.HotSpotService.add_day_hook`.  Once per
completed day it

1. feeds the day's summary to the :class:`~repro.lifecycle.drift
   .DriftMonitor` and runs the KS check (``drift`` events);
2. resolves the day for whichever pair is under side-by-side scoring —
   champion vs challenger in ``shadow``, demoted-vs-promoted in
   ``confirm`` (``shadow`` / ``confirm`` events);
3. asks the :class:`~repro.lifecycle.promote.PromotionPolicy` for a
   verdict and applies it — versioned promotion or rollback through the
   :class:`~repro.serve.registry.ModelRegistry`, pinning the
   :class:`~repro.serve.engine.PredictionEngine` to the new version
   (which invalidates the per-day forecast cache immediately);
4. when idle, asks the :class:`~repro.lifecycle.retrain
   .RetrainScheduler` whether drift or cadence warrants a challenger
   and fits one from the ring (``retrain`` / ``retrain_failed``).

**Crash-consistency contract.**  The hook runs inside the resilience
guard's apply step, *before* the day-completing tick reaches the WAL.
All lifecycle decisions are deterministic functions of (ring state,
prior :class:`~repro.lifecycle.promote.LifecycleState`): challenger
seeds derive from the trigger day, registry versions from the state's
own counter (an archive orphaned by a crash is overwritten with
identical bytes on re-processing), and the whole day's transition
commits in one atomic ``lifecycle.json`` write.  A tick killed
*before* that commit is re-processed from the previous state and
reaches the same outcome; a tick killed *after* it re-emits the
committed event list verbatim.  Either way the active champion and the
subsequent alert stream match an uninterrupted run (asserted in
``tests/test_lifecycle_promotion.py``).
"""

from __future__ import annotations

from pathlib import Path

from repro.data.tensor import HOURS_PER_DAY
from repro.lifecycle.drift import DriftConfig, DriftMonitor
from repro.lifecycle.promote import LifecycleState, PromotionConfig, PromotionPolicy
from repro.lifecycle.retrain import RetrainConfig, RetrainScheduler
from repro.lifecycle.shadow import ShadowEvaluator
from repro.serve.engine import PredictionEngine
from repro.serve.ingest import IngestTick
from repro.serve.registry import ModelKey

__all__ = ["LifecycleController"]


class LifecycleController:
    """Drive drift monitoring, retraining, and promotion for one cell.

    Parameters
    ----------
    engine:
        The serving engine whose default ``(model, window)`` cell this
        controller manages; promotions pin its active model version.
    drift, retrain, promotion:
        Sub-policy configurations (defaults apply when omitted).  The
        retrain cell must match the engine's served cell — promoting a
        challenger trained for a different cell would never affect
        served forecasts.
    state_path:
        Where the durable state commits after every processed day.
        Point this at
        :meth:`~repro.resilience.checkpoint.CheckpointManager.state_path`
        (``lifecycle.json``) so lifecycle recovery shares the WAL's
        directory; ``None`` keeps state in memory only (no crash
        consistency).  An existing file is loaded on construction —
        passing the same path after a crash *is* the resume path.
    start_day:
        First day lifecycle decisions run; earlier days only feed the
        drift monitor.  The bootstrap champion is treated as trained at
        this day (cadence and hysteresis count from it).
    n_jobs:
        Worker processes for challenger forest fits (bitwise-identical
        results for any value, the PR 2 guarantee).
    """

    def __init__(
        self,
        engine: PredictionEngine,
        drift: DriftConfig | None = None,
        retrain: RetrainConfig | None = None,
        promotion: PromotionConfig | None = None,
        state_path: str | Path | None = None,
        start_day: int = 0,
        n_jobs: int | None = 1,
    ) -> None:
        retrain = retrain or RetrainConfig()
        if retrain.target != engine.target:
            raise ValueError(
                f"retrain target {retrain.target!r} does not match the engine's "
                f"{engine.target!r}"
            )
        if retrain.model != engine.default_model:
            raise ValueError(
                f"retrain model {retrain.model!r} does not match the served "
                f"default {engine.default_model!r}; promotions would never "
                "affect served forecasts"
            )
        if retrain.window != engine.default_window:
            raise ValueError(
                f"retrain window {retrain.window} does not match the served "
                f"default {engine.default_window}"
            )
        if start_day < 0:
            raise ValueError(f"start_day must be >= 0, got {start_day}")
        self.engine = engine
        self.monitor = DriftMonitor(drift)
        self.scheduler = RetrainScheduler(retrain)
        self.shadow = ShadowEvaluator(retrain.target, retrain.horizon, retrain.window)
        self.policy = PromotionPolicy(promotion)
        self.start_day = start_day
        self.n_jobs = n_jobs
        self.state_path = None if state_path is None else Path(state_path)

        ingestor = engine.ingestor
        needed_days = max(
            self.monitor.config.total_days, self.scheduler.config.lookback_days
        )
        if ingestor.capacity < needed_days * HOURS_PER_DAY:
            raise ValueError(
                f"ingestor ring ({ingestor.capacity} h) cannot hold the "
                f"{needed_days} days the drift windows and retrain lookback "
                "need; raise w_max/capacity_hours"
            )

        loaded = (
            LifecycleState.load(self.state_path)
            if self.state_path is not None
            else None
        )
        if loaded is not None:
            self.state = loaded
        else:
            self.state = LifecycleState(last_retrain_day=start_day)
        # Mid-stream attach or crash recovery: rebuild the drift windows
        # from ring state and re-pin the engine to the durable champion.
        if ingestor.last_complete_day >= 0:
            self.monitor.backfill(ingestor, ingestor.last_complete_day)
        if (
            loaded is not None
            and ingestor.last_complete_day < self.state.last_day_processed
        ):
            # The committed day's tick was applied but never journaled,
            # so it is about to be re-processed.  Alerts for a completing
            # day are computed *before* the day hooks run, so serve that
            # re-computed alert with the pin that was active while the
            # day originally ran; the re-emit path re-applies the
            # committed pins afterwards, exactly as the live transition
            # did.
            self.engine.set_active_version(
                self.config.model, self.state.last_day_pre_champion
            )
        else:
            self._apply_pins()

    # ------------------------------------------------------------- wiring
    @property
    def telemetry(self):
        return self.engine.telemetry

    @property
    def config(self) -> RetrainConfig:
        return self.scheduler.config

    def model_key(self, version: int | None) -> ModelKey:
        """Registry key of the managed cell at *version*."""
        config = self.config
        return ModelKey(
            config.target, config.model, config.horizon, config.window,
            version=version,
        )

    def _model(self, version: int | None):
        return self.engine.registry.get(self.model_key(version))

    def _apply_pins(self) -> None:
        """Make the engine serve the durable state's champion."""
        self.engine.set_active_version(
            self.config.model, self.state.champion_version
        )

    def _commit(
        self, t_day: int, events: list[dict], pre_champion: int | None
    ) -> None:
        """The per-day atomic commit point (see module docstring)."""
        self.state.last_day_processed = t_day
        self.state.last_day_events = events
        self.state.last_day_pre_champion = pre_champion
        if self.state_path is not None:
            self.state.save(self.state_path)

    # ------------------------------------------------------------ the hook
    def on_day(self, tick: IngestTick) -> list[dict]:
        """Day-completion hook: run one lifecycle step, return its events."""
        if not tick.day_completed:
            return []
        t_day = tick.t_day
        ingestor = self.engine.ingestor
        self.monitor.observe_day(ingestor, t_day)
        if t_day <= self.state.last_day_processed:
            # A recovered stream re-processing a tick that was applied
            # but never journaled: re-emit the committed events and make
            # sure the served pin matches the durable champion.
            self._apply_pins()
            if t_day == self.state.last_day_processed:
                return [dict(event) for event in self.state.last_day_events]
            return []
        if t_day < self.start_day:
            return []

        events: list[dict] = []
        pre_champion = self.state.champion_version
        drifted = self._check_drift(t_day, events)
        if self.state.phase == "shadow":
            self._step_shadow(t_day, events)
        elif self.state.phase == "confirm":
            self._step_confirm(t_day, events)
        if self.state.phase == "idle":
            self._maybe_retrain(t_day, drifted, events)
        self._commit(t_day, events, pre_champion)
        return events

    # ------------------------------------------------------------- phases
    def _check_drift(self, t_day: int, events: list[dict]) -> bool:
        record = self.monitor.check(t_day)
        if record is None:
            return False
        events.append(self.telemetry.event("drift", **record))
        return True

    def _step_shadow(self, t_day: int, events: list[dict]) -> None:
        state = self.state
        config = self.config
        if t_day >= state.challenger_trained_day + config.horizon:
            result = self.shadow.evaluate_day(
                self.engine.ingestor,
                self._model(state.champion_version),
                self._model(state.challenger_version),
                t_day,
            )
            if result is not None:
                row = result.as_row()
                state.shadow_rows.append(row)
                events.append(
                    self.telemetry.event(
                        "shadow",
                        champion_version=state.champion_version,
                        challenger_version=state.challenger_version,
                        **row,
                    )
                )
        verdict = self.policy.decide_shadow(
            state.shadow_rows, t_day, state.last_promotion_day
        )
        if verdict == "promote":
            self._promote(t_day, events)
        elif verdict == "retire":
            events.append(
                self.telemetry.event(
                    "challenger_retired",
                    t_day=t_day,
                    version=state.challenger_version,
                    shadow_days=len(state.shadow_rows),
                    defined_days=self.policy.defined_days(state.shadow_rows),
                    mean_delta=self.policy.mean_delta(state.shadow_rows),
                )
            )
            state.challenger_version = None
            state.challenger_trained_day = -1
            state.shadow_rows = []
            state.phase = "idle"

    def _promote(self, t_day: int, events: list[dict]) -> None:
        state = self.state
        events.append(
            self.telemetry.event(
                "promotion",
                t_day=t_day,
                from_version=state.champion_version,
                to_version=state.challenger_version,
                mean_delta=self.policy.mean_delta(state.shadow_rows),
                shadow_days=len(state.shadow_rows),
                defined_days=self.policy.defined_days(state.shadow_rows),
            )
        )
        state.previous_version = state.champion_version
        state.champion_version = state.challenger_version
        state.challenger_version = None
        state.challenger_trained_day = -1
        state.last_promotion_day = t_day
        state.shadow_rows = []
        state.confirm_rows = []
        state.phase = (
            "confirm" if self.policy.config.confirm_days > 0 else "idle"
        )
        self._apply_pins()

    def _step_confirm(self, t_day: int, events: list[dict]) -> None:
        state = self.state
        if t_day > state.last_promotion_day:
            # Roles swapped: the demoted champion shadows the promoted
            # one, so a positive ∆ means the old model still wins.
            result = self.shadow.evaluate_day(
                self.engine.ingestor,
                self._model(state.champion_version),
                self._model(state.previous_version),
                t_day,
            )
            if result is not None:
                row = result.as_row()
                state.confirm_rows.append(row)
                events.append(
                    self.telemetry.event(
                        "confirm",
                        champion_version=state.champion_version,
                        previous_version=state.previous_version,
                        **row,
                    )
                )
        verdict = self.policy.decide_confirm(state.confirm_rows)
        if verdict == "rollback":
            self._rollback(t_day, events, reason="confirm_window")
        elif verdict == "confirm":
            events.append(
                self.telemetry.event(
                    "promotion_confirmed",
                    t_day=t_day,
                    version=state.champion_version,
                    confirm_days=len(state.confirm_rows),
                    mean_delta=self.policy.mean_delta(state.confirm_rows),
                )
            )
            state.previous_version = None
            state.confirm_rows = []
            state.phase = "idle"

    def _rollback(self, t_day: int, events: list[dict], reason: str) -> None:
        state = self.state
        events.append(
            self.telemetry.event(
                "rollback",
                t_day=t_day,
                from_version=state.champion_version,
                to_version=state.previous_version,
                reason=reason,
                mean_delta=self.policy.mean_delta(state.confirm_rows),
            )
        )
        state.champion_version = state.previous_version
        state.previous_version = None
        state.confirm_rows = []
        state.phase = "idle"
        self._apply_pins()

    def rollback(self, t_day: int | None = None) -> dict | None:
        """Operator-initiated rollback to the pre-promotion champion.

        Only meaningful while a previous version is on record (the
        ``confirm`` phase, or right after a promotion with
        ``confirm_days == 0`` before the record is cleared).  Returns
        the rollback event, or None when there is nothing to roll back
        to.  The transition commits durably like any per-day one.
        """
        if self.state.previous_version is None and self.state.phase != "confirm":
            return None
        day = self.engine.ingestor.last_complete_day if t_day is None else t_day
        events: list[dict] = []
        pre_champion = self.state.champion_version
        self._rollback(day, events, reason="operator")
        self._commit(max(day, self.state.last_day_processed), events, pre_champion)
        return events[0]

    def _maybe_retrain(self, t_day: int, drifted: bool, events: list[dict]) -> None:
        state = self.state
        config = self.config
        reason = self.scheduler.should_retrain(
            t_day, drifted, state.last_retrain_day
        )
        if reason is None:
            return
        try:
            challenger = self.scheduler.fit_challenger(
                self.engine.ingestor, t_day, n_jobs=self.n_jobs
            )
        except ValueError as error:
            events.append(
                self.telemetry.event(
                    "retrain_failed", t_day=t_day, trigger=reason,
                    detail=str(error),
                )
            )
            return
        version = state.version_counter + 1
        seed = self.scheduler.seed_for(t_day)
        provenance = {
            "trigger": reason,
            "trigger_day": t_day,
            "seed": seed,
            "n_estimators": config.n_estimators,
            "n_training_days": config.n_training_days,
            "train_window_days": [t_day - config.lookback_days + 1, t_day],
            "parent_version": state.champion_version,
        }
        self.engine.registry.save_version(
            self.model_key(None), challenger, provenance, version=version
        )
        state.version_counter = version
        state.challenger_version = version
        state.challenger_trained_day = t_day
        state.last_retrain_day = t_day
        state.shadow_rows = []
        state.phase = "shadow"
        events.append(
            self.telemetry.event(
                "retrain", t_day=t_day, trigger=reason, version=version,
                seed=seed, parent_version=state.champion_version,
            )
        )

    # -------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Lifecycle snapshot for the service stats surface."""
        state = self.state
        return {
            "phase": state.phase,
            "champion_version": state.champion_version,
            "challenger_version": state.challenger_version,
            "version_counter": state.version_counter,
            "last_retrain_day": state.last_retrain_day,
            "last_promotion_day": state.last_promotion_day,
            "last_day_processed": state.last_day_processed,
            "shadow_days": len(state.shadow_rows),
            "confirm_days": len(state.confirm_rows),
            "drift_checks": self.monitor.checks_run,
            "challenger_fits": self.scheduler.fits,
        }

    def status(self) -> dict:
        """Operator-facing snapshot for the gateway's ``/status`` plane.

        Extends :meth:`stats` with the champion's registry provenance
        sidecar and the live shadow Δ summary, so an operator can see
        *which* model is serving (version, trigger, seed, parent) and
        how the current challenger is tracking without reading registry
        files off disk.
        """
        state = self.state
        registry = self.engine.registry
        champion_key = self.model_key(state.champion_version)
        snapshot = self.stats()
        snapshot["champion"] = {
            "version": state.champion_version,
            "key": str(champion_key),
            "provenance": registry.provenance(champion_key),
        }
        shadow: dict = {
            "phase": state.phase,
            "challenger_version": state.challenger_version,
            "shadow_days": len(state.shadow_rows),
            "confirm_days": len(state.confirm_rows),
        }
        if state.shadow_rows:
            shadow["defined_days"] = self.policy.defined_days(state.shadow_rows)
            shadow["mean_delta"] = self.policy.mean_delta(state.shadow_rows)
        snapshot["shadow"] = shadow
        return snapshot
