"""Online distribution-drift detection over the serving stream.

The paper's Sec. V-A temporal-stability analysis runs two-sample
Kolmogorov–Smirnov tests over daily score distributions offline
(:func:`repro.core.stability.temporal_stability`).  :class:`DriftMonitor`
is the online counterpart: it maintains a sliding *reference* window and
a sliding *current* window of per-day summaries — the day's sector score
column plus per-sector per-KPI daily means — pulled straight from the
:class:`~repro.serve.ingest.StreamIngestor` ring, and re-runs the same
KS machinery (:func:`repro.stats.ks.ks_two_sample`) once per completed
day.

Drift fires when the score distribution of the current window rejects
the reference window's at ``alpha``; the per-KPI marginal tests diagnose
*which* channels moved (``affected_kpis``).  With ``kpi_quorum`` set,
enough drifted KPI marginals also trigger on their own, catching input
shifts the integrated score has not surfaced yet.

Every summary is recomputed from ring state, so after a crash the
monitor rebuilds bitwise-identically via :meth:`DriftMonitor.backfill`
(the checkpoint layer restores the ring; no monitor state needs
journaling).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.data.tensor import HOURS_PER_DAY
from repro.serve.ingest import StreamIngestor
from repro.stats.ks import ks_two_sample

__all__ = ["DriftConfig", "DriftMonitor"]


@dataclass(frozen=True)
class DriftConfig:
    """Window geometry and decision thresholds for drift detection.

    Attributes
    ----------
    reference_days:
        Days in the (older) reference window.
    current_days:
        Days in the (newer) current window.  The two windows are
        adjacent: with defaults, days ``t-20..t-7`` reference vs
        ``t-6..t`` current.
    alpha:
        KS significance level for the score-distribution test (and the
        per-KPI marginal tests).
    min_samples:
        Minimum sample size per side for a per-KPI marginal test to be
        attempted (tiny samples make the asymptotic p-value meaningless).
    kpi_quorum:
        When set, drift also fires if at least this many KPI marginals
        individually reject at ``alpha`` even though the score
        distribution has not moved yet.  ``None`` (default) triggers on
        the score test only; KPI results stay diagnostic.
    """

    reference_days: int = 14
    current_days: int = 7
    alpha: float = 0.01
    min_samples: int = 8
    kpi_quorum: int | None = None

    def __post_init__(self) -> None:
        if self.reference_days < 1 or self.current_days < 1:
            raise ValueError(
                f"window days must be >= 1, got reference={self.reference_days}, "
                f"current={self.current_days}"
            )
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {self.min_samples}")
        if self.kpi_quorum is not None and self.kpi_quorum < 1:
            raise ValueError(f"kpi_quorum must be >= 1, got {self.kpi_quorum}")

    @property
    def total_days(self) -> int:
        return self.reference_days + self.current_days


class DriftMonitor:
    """Sliding-window KS drift detector fed one completed day at a time."""

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        # (day, scores (n,), kpi_means (n, l)) — newest last.
        self._days: deque[tuple[int, np.ndarray, np.ndarray]] = deque(
            maxlen=self.config.total_days
        )
        self.last_day_observed = -1
        self.checks_run = 0

    # ------------------------------------------------------------ observe
    @staticmethod
    def day_summary(
        ingestor: StreamIngestor, day: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(scores, per-KPI daily means) for a completed *day*.

        Scores come from the full daily history; KPI means are averaged
        from the ring's raw hourly values with missing entries masked
        (a sector-KPI pair fully dark for the day yields NaN and is
        dropped at test time).
        """
        if not 0 <= day <= ingestor.last_complete_day:
            raise ValueError(
                f"day {day} is not a completed day "
                f"(last complete: {ingestor.last_complete_day})"
            )
        scores = np.array(ingestor.score_daily[:, day], dtype=np.float64)
        window = ingestor.hourly_window(
            day * HOURS_PER_DAY, (day + 1) * HOURS_PER_DAY
        )
        values, missing = window["values"], window["missing"]
        counts = (~missing).sum(axis=1)
        sums = np.where(missing, 0.0, values).sum(axis=1)
        with np.errstate(invalid="ignore"):
            kpi_means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        return scores, kpi_means

    def observe_day(self, ingestor: StreamIngestor, day: int) -> bool:
        """Push *day*'s summary into the sliding windows (idempotent).

        Returns True when the day was newly observed, False when it had
        already been seen (replayed ticks after a recovery).
        """
        if day <= self.last_day_observed:
            return False
        scores, kpi_means = self.day_summary(ingestor, day)
        self._days.append((day, scores, kpi_means))
        self.last_day_observed = day
        return True

    def backfill(self, ingestor: StreamIngestor, through_day: int) -> int:
        """Rebuild the windows from ring state after a recovery.

        Observes the last ``total_days`` days ending at *through_day*,
        clamped to the days the ring fully retains: after a mid-day
        crash the oldest window day may be partially evicted, but the
        deque realigns bitwise with a live monitor as soon as the next
        day completes (capacity >= total_days * 24, which the lifecycle
        controller validates).  Returns the number of days observed.
        """
        first = max(0, through_day - self.config.total_days + 1)
        earliest_retained = ingestor.hours_seen - ingestor.capacity
        if earliest_retained > 0:
            first = max(first, -(-earliest_retained // HOURS_PER_DAY))
        observed = 0
        for day in range(first, through_day + 1):
            observed += int(self.observe_day(ingestor, day))
        return observed

    @property
    def ready(self) -> bool:
        """True once both windows are fully populated."""
        return len(self._days) == self.config.total_days

    # -------------------------------------------------------------- check
    def check(self, t_day: int) -> dict | None:
        """Run the KS tests for the windows ending at *t_day*.

        Returns the drift record's fields (statistic, p-value, window
        geometry, affected KPIs) when drift is detected, None otherwise
        (including while the windows are still filling).  The caller
        turns the fields into a ``{"event": "drift", ...}`` record.
        """
        config = self.config
        if not self.ready:
            return None
        self.checks_run += 1
        entries = list(self._days)
        reference = entries[: config.reference_days]
        current = entries[config.reference_days:]
        ref_scores = np.concatenate([scores for _, scores, _ in reference])
        cur_scores = np.concatenate([scores for _, scores, _ in current])
        score_test = ks_two_sample(ref_scores, cur_scores)

        n_kpis = entries[0][2].shape[1]
        affected: list[int] = []
        kpi_pvalues: dict[int, float] = {}
        for kpi in range(n_kpis):
            ref_kpi = np.concatenate([means[:, kpi] for _, _, means in reference])
            cur_kpi = np.concatenate([means[:, kpi] for _, _, means in current])
            ref_kpi = ref_kpi[~np.isnan(ref_kpi)]
            cur_kpi = cur_kpi[~np.isnan(cur_kpi)]
            if ref_kpi.size < config.min_samples or cur_kpi.size < config.min_samples:
                continue
            kpi_test = ks_two_sample(ref_kpi, cur_kpi)
            kpi_pvalues[kpi] = kpi_test.pvalue
            if kpi_test.rejects_null(config.alpha):
                affected.append(kpi)

        drifted = score_test.rejects_null(config.alpha)
        if config.kpi_quorum is not None and len(affected) >= config.kpi_quorum:
            drifted = True
        if not drifted:
            return None
        return {
            "t_day": int(t_day),
            "statistic": float(score_test.statistic),
            "pvalue": float(score_test.pvalue),
            "alpha": float(config.alpha),
            "reference_days": int(config.reference_days),
            "current_days": int(config.current_days),
            "affected_kpis": [int(k) for k in affected],
        }
