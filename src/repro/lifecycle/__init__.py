"""Model lifecycle: drift monitoring, retraining, and promotion.

The serving stack (``repro.serve``) answers *what is hot tomorrow*;
this package answers *is the model that answers still the right one*.
It is the online counterpart of the paper's Sec. V-A temporal-stability
analysis, closed into a control loop:

* :mod:`~repro.lifecycle.drift` — sliding-window two-sample KS tests
  over daily score/KPI distributions, run once per completed day;
* :mod:`~repro.lifecycle.retrain` — drift- or cadence-triggered
  challenger fits straight from the ingestion ring, with deterministic
  per-trigger-day seeds;
* :mod:`~repro.lifecycle.shadow` — side-by-side champion/challenger
  scoring with the paper's metrics (AP ψ, lift Λ) as live days resolve;
* :mod:`~repro.lifecycle.promote` — the promotion policy and the
  durable state machine (idle → shadow → confirm);
* :mod:`~repro.lifecycle.controller` — the day hook tying it together,
  journaling every transition through one atomic write per day for
  crash consistency with the resilience WAL.
"""

from repro.lifecycle.controller import LifecycleController
from repro.lifecycle.drift import DriftConfig, DriftMonitor
from repro.lifecycle.promote import LifecycleState, PromotionConfig, PromotionPolicy
from repro.lifecycle.retrain import RetrainConfig, RetrainScheduler, RingFeatureView
from repro.lifecycle.shadow import ShadowEvaluator, ShadowResult

__all__ = [
    "DriftConfig",
    "DriftMonitor",
    "LifecycleController",
    "LifecycleState",
    "PromotionConfig",
    "PromotionPolicy",
    "RetrainConfig",
    "RetrainScheduler",
    "RingFeatureView",
    "ShadowEvaluator",
    "ShadowResult",
]
