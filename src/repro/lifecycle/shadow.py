"""Side-by-side champion/challenger scoring on live days.

While a challenger is in shadow, every freshly completed day *resolves*
one earlier forecast: the window ending at ``target_day - horizon`` is
re-assembled from the ring, both models score it, and each ranking is
evaluated against the day's ground-truth labels with the paper's
metrics (:func:`repro.core.evaluation.evaluate_ranking` — average
precision ψ, lift Λ) plus the relative improvement
``∆ = 100·(Λ_challenger/Λ_champion − 1)``.

Served predictions are never touched: the champion keeps answering
``predict()`` through the engine's cache, and the shadow pass
recomputes its forecast independently.  Because both forecasts are pure
functions of ring state and the fitted models, a shadow day evaluated
after a crash-recovery replay is bitwise the day an uninterrupted run
evaluated — and matches an offline ``core.evaluation`` pass over the
batch feature tensor (the ingestor parity contract), which is asserted
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import BaselineModel
from repro.core.evaluation import EvaluationResult, evaluate_ranking
from repro.core.labels import become_hot_labels
from repro.serve.ingest import StreamIngestor

__all__ = ["ShadowResult", "ShadowEvaluator"]


@dataclass(frozen=True)
class ShadowResult:
    """One resolved shadow day."""

    target_day: int
    input_day: int
    champion: EvaluationResult
    challenger: EvaluationResult

    @property
    def delta(self) -> float:
        """Relative lift improvement ∆ (percent); NaN when undefined."""
        if (
            not self.champion.defined
            or not self.challenger.defined
            or not np.isfinite(self.champion.lift)
            or not np.isfinite(self.challenger.lift)
            or self.champion.lift <= 0
        ):
            return float("nan")
        return 100.0 * (self.challenger.lift / self.champion.lift - 1.0)

    def as_row(self) -> dict:
        """JSON-able row; floats round-trip exactly through json."""
        return {
            "target_day": int(self.target_day),
            "input_day": int(self.input_day),
            "champion_ap": float(self.champion.average_precision),
            "champion_lift": float(self.champion.lift),
            "challenger_ap": float(self.challenger.average_precision),
            "challenger_lift": float(self.challenger.lift),
            "n_sectors": int(self.champion.n_sectors),
            "n_positive": int(self.champion.n_positive),
            "delta": float(self.delta),
        }


class ShadowEvaluator:
    """Resolve shadow forecasts as their target days complete."""

    def __init__(self, target: str, horizon: int, window: int) -> None:
        if target not in ("hot", "become"):
            raise ValueError(f"target must be 'hot' or 'become', got {target!r}")
        if horizon < 1 or window < 1:
            raise ValueError(
                f"horizon and window must be >= 1, got h={horizon}, w={window}"
            )
        self.target = target
        self.horizon = horizon
        self.window = window

    def evaluate_day(
        self,
        ingestor: StreamIngestor,
        champion,
        challenger,
        target_day: int,
    ) -> ShadowResult | None:
        """Score both models for the forecast that targeted *target_day*.

        Returns None when the day is unresolvable: the input window does
        not fit before day 0, was evicted from the ring, or contains
        missing (gap-filled) hours — skipped for both models alike, so
        the comparison stays fair.
        """
        input_day = target_day - self.horizon
        if input_day - self.window + 1 < 0:
            return None
        labels = self._labels(ingestor, target_day)
        try:
            champion_scores = self.score_model(ingestor, champion, input_day)
            challenger_scores = self.score_model(ingestor, challenger, input_day)
        except ValueError:
            return None
        return ShadowResult(
            target_day=target_day,
            input_day=input_day,
            champion=evaluate_ranking(champion_scores, labels),
            challenger=evaluate_ranking(challenger_scores, labels),
        )

    def score_model(self, ingestor: StreamIngestor, model, input_day: int) -> np.ndarray:
        """One model's ranking from the window ending at *input_day*."""
        if isinstance(model, BaselineModel):
            return np.asarray(
                model.forecast(
                    ingestor.score_daily,
                    ingestor.labels_daily,
                    input_day,
                    self.horizon,
                    self.window,
                ),
                dtype=np.float64,
            )
        window_block = ingestor.feature_window(input_day, self.window)
        return np.asarray(model.forecast_window(window_block), dtype=np.float64)

    def _labels(self, ingestor: StreamIngestor, target_day: int) -> np.ndarray:
        if self.target == "hot":
            return np.asarray(ingestor.labels_daily[:, target_day])
        become = become_hot_labels(
            ingestor.score_daily, ingestor.config.hotspot_threshold
        )
        return become[:, target_day]

    @staticmethod
    def summarize(rows: list[dict]) -> dict:
        """Aggregate resolved shadow rows into a decision summary."""
        deltas = [row["delta"] for row in rows if np.isfinite(row["delta"])]
        champion_lifts = [
            row["champion_lift"] for row in rows if np.isfinite(row["champion_lift"])
        ]
        challenger_lifts = [
            row["challenger_lift"]
            for row in rows
            if np.isfinite(row["challenger_lift"])
        ]
        return {
            "evaluated_days": len(rows),
            "defined_days": len(deltas),
            "mean_delta": float(np.mean(deltas)) if deltas else float("nan"),
            "champion_mean_lift": (
                float(np.mean(champion_lifts)) if champion_lifts else float("nan")
            ),
            "challenger_mean_lift": (
                float(np.mean(challenger_lifts)) if challenger_lifts else float("nan")
            ),
        }
