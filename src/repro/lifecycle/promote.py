"""Champion/challenger promotion: decision policy and durable state.

Promotion is a three-phase state machine over one served ``(model,
horizon, window)`` cell:

* ``idle`` — the champion serves alone; drift or cadence may mint a
  challenger (phase → ``shadow``);
* ``shadow`` — the challenger is scored side-by-side with the champion
  on every freshly resolved day; once enough *defined* shadow days
  accumulate, :class:`PromotionPolicy` either promotes it (mean shadow
  ∆ ≥ ``min_delta``, phase → ``confirm`` or ``idle``) or — after
  ``max_shadow_days`` resolved days without a win — retires it;
* ``confirm`` — optional post-promotion watch: the *demoted* champion
  keeps shadowing the freshly promoted one, and if it still beats the
  new champion (mean ∆ of old-over-new > ``rollback_delta``) the
  promotion is rolled back to the previous version.

:class:`LifecycleState` is the durable half: a JSON-able record of the
machine (phase, champion/challenger versions, shadow rows, the
monotonic version counter, and the last processed day's event list)
written atomically via :func:`repro.data.store.write_json_atomic` —
typically into the resilience checkpoint directory
(:meth:`~repro.resilience.checkpoint.CheckpointManager.state_path`).
Every per-day lifecycle transition commits in **one** atomic write, so
a crash at any point during retrain/promotion leaves either the old
state (the day is deterministically re-processed on recovery) or the
new one (the recorded events are re-emitted verbatim); there is no
intermediate to recover from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.store import write_json_atomic

__all__ = ["PromotionConfig", "PromotionPolicy", "LifecycleState"]

#: Phases of the promotion state machine.
PHASES = ("idle", "shadow", "confirm")


@dataclass(frozen=True)
class PromotionConfig:
    """When a shadowed challenger replaces the champion.

    Attributes
    ----------
    min_delta:
        Minimum mean shadow ∆ (percent relative lift improvement over
        the champion) required to promote.
    min_shadow_days:
        Defined (∆ computable) shadow days required before any
        promote/retire decision is taken.
    max_shadow_days:
        Resolved shadow days after which a challenger that has not
        earned promotion is retired (phase back to ``idle``, the next
        trigger may mint a fresh one).
    confirm_days:
        Post-promotion watch window: the demoted champion shadows the
        new one for this many defined days before the promotion is
        confirmed.  ``0`` disables the watch (promotions are final).
    rollback_delta:
        During the confirm phase, mean ∆ of the *old* champion over the
        *new* one above this threshold rolls the promotion back.
    min_days_between_promotions:
        Hysteresis: a new promotion is suppressed until this many days
        passed since the last one (rollbacks are exempt — a bad
        champion must not be protected by its own promotion).
    """

    min_delta: float = 5.0
    min_shadow_days: int = 5
    max_shadow_days: int = 14
    confirm_days: int = 0
    rollback_delta: float = 0.0
    min_days_between_promotions: int = 7

    def __post_init__(self) -> None:
        if not np.isfinite(self.min_delta):
            raise ValueError(f"min_delta must be finite, got {self.min_delta}")
        if self.min_shadow_days < 1:
            raise ValueError(
                f"min_shadow_days must be >= 1, got {self.min_shadow_days}"
            )
        if self.max_shadow_days < self.min_shadow_days:
            raise ValueError(
                f"max_shadow_days ({self.max_shadow_days}) must be >= "
                f"min_shadow_days ({self.min_shadow_days})"
            )
        if self.confirm_days < 0:
            raise ValueError(f"confirm_days must be >= 0, got {self.confirm_days}")
        if self.min_days_between_promotions < 1:
            raise ValueError(
                f"min_days_between_promotions must be >= 1, got "
                f"{self.min_days_between_promotions}"
            )


class PromotionPolicy:
    """Pure decision logic over accumulated shadow rows.

    The policy never touches the registry or the engine; it only turns
    ``(rows, t_day, last_promotion_day)`` into a verdict.  Keeping it
    side-effect free is what makes lifecycle replay deterministic: the
    same rows always yield the same decision.
    """

    def __init__(self, config: PromotionConfig | None = None) -> None:
        self.config = config or PromotionConfig()

    @staticmethod
    def mean_delta(rows: list[dict]) -> float:
        """Mean of the defined ∆ values in *rows* (NaN when none)."""
        deltas = [row["delta"] for row in rows if np.isfinite(row["delta"])]
        return float(np.mean(deltas)) if deltas else float("nan")

    @staticmethod
    def defined_days(rows: list[dict]) -> int:
        return sum(1 for row in rows if np.isfinite(row["delta"]))

    def decide_shadow(
        self, rows: list[dict], t_day: int, last_promotion_day: int
    ) -> str | None:
        """Verdict for a challenger in shadow: promote / retire / keep.

        Returns ``"promote"``, ``"retire"``, or ``None`` (keep
        shadowing).  A challenger that exhausts ``max_shadow_days``
        without enough defined days — or with a mean ∆ below the bar —
        is retired rather than left shadowing forever.
        """
        config = self.config
        defined = self.defined_days(rows)
        exhausted = len(rows) >= config.max_shadow_days
        if defined < config.min_shadow_days:
            return "retire" if exhausted else None
        held = (
            last_promotion_day >= 0
            and t_day - last_promotion_day < config.min_days_between_promotions
        )
        if not held and self.mean_delta(rows) >= config.min_delta:
            return "promote"
        return "retire" if exhausted else None

    def decide_confirm(self, rows: list[dict]) -> str | None:
        """Verdict for a fresh promotion under watch: rollback / confirm.

        *rows* score the **demoted** champion as the challenger against
        the newly promoted model, so a positive ∆ means the old model
        still wins.  Returns ``"rollback"``, ``"confirm"``, or ``None``
        (keep watching).
        """
        config = self.config
        if config.confirm_days == 0:
            return "confirm"
        if self.defined_days(rows) < config.confirm_days:
            return None
        if self.mean_delta(rows) > config.rollback_delta:
            return "rollback"
        return "confirm"


@dataclass
class LifecycleState:
    """Durable promotion-machine state, committed one atomic write per day.

    Attributes
    ----------
    phase:
        ``"idle"``, ``"shadow"``, or ``"confirm"``.
    champion_version:
        Registry version currently served (``None`` = the unversioned
        bootstrap entry).
    previous_version:
        Rollback target while in ``confirm`` (the demoted champion).
    challenger_version, challenger_trained_day:
        The shadowed challenger and its (deterministic-seed) trigger day.
    version_counter:
        Monotonic source of registry version numbers.  Versions are
        derived from this counter — **not** from the registry's on-disk
        maximum — so a crash that orphans a saved archive re-mints the
        *same* number on re-processing and overwrites it with identical
        content instead of leaking a stray version.
    last_retrain_day, last_promotion_day:
        Hysteresis anchors for the retrain and promotion policies.
    last_day_processed, last_day_events:
        The commit record: when a recovered stream re-processes day
        ``last_day_processed`` (its tick was applied but never
        journaled), the recorded events are re-emitted verbatim instead
        of re-deciding — the alert/event stream after a crash matches
        the uninterrupted run exactly.
    last_day_pre_champion:
        The champion that was serving while day ``last_day_processed``
        was being processed (alerts for a completing day are computed
        *before* the day hooks run, so a promotion takes effect one tick
        later).  On recovery, if that day's tick is about to be
        re-processed, the engine is pinned to this version so the
        re-computed alert matches the original bitwise; the re-emit path
        then re-applies the committed pins, exactly as the live
        transition did.
    shadow_rows, confirm_rows:
        Resolved :meth:`~repro.lifecycle.shadow.ShadowResult.as_row`
        dicts for the active shadow/confirm window (floats round-trip
        exactly through JSON, so recovered decisions are bitwise).
    """

    phase: str = "idle"
    champion_version: int | None = None
    previous_version: int | None = None
    challenger_version: int | None = None
    challenger_trained_day: int = -1
    version_counter: int = 0
    last_retrain_day: int = -1
    last_promotion_day: int = -1
    last_day_processed: int = -1
    last_day_pre_champion: int | None = None
    shadow_rows: list[dict] = field(default_factory=list)
    confirm_rows: list[dict] = field(default_factory=list)
    last_day_events: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}, got {self.phase!r}")

    # ------------------------------------------------------------ persist
    def as_json(self) -> dict:
        return {
            "phase": self.phase,
            "champion_version": self.champion_version,
            "previous_version": self.previous_version,
            "challenger_version": self.challenger_version,
            "challenger_trained_day": self.challenger_trained_day,
            "version_counter": self.version_counter,
            "last_retrain_day": self.last_retrain_day,
            "last_promotion_day": self.last_promotion_day,
            "last_day_processed": self.last_day_processed,
            "last_day_pre_champion": self.last_day_pre_champion,
            "shadow_rows": self.shadow_rows,
            "confirm_rows": self.confirm_rows,
            "last_day_events": self.last_day_events,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "LifecycleState":
        def _opt(name: str) -> int | None:
            value = payload.get(name)
            return None if value is None else int(value)

        return cls(
            phase=str(payload.get("phase", "idle")),
            champion_version=_opt("champion_version"),
            previous_version=_opt("previous_version"),
            challenger_version=_opt("challenger_version"),
            challenger_trained_day=int(payload.get("challenger_trained_day", -1)),
            version_counter=int(payload.get("version_counter", 0)),
            last_retrain_day=int(payload.get("last_retrain_day", -1)),
            last_promotion_day=int(payload.get("last_promotion_day", -1)),
            last_day_processed=int(payload.get("last_day_processed", -1)),
            last_day_pre_champion=_opt("last_day_pre_champion"),
            shadow_rows=list(payload.get("shadow_rows", [])),
            confirm_rows=list(payload.get("confirm_rows", [])),
            last_day_events=list(payload.get("last_day_events", [])),
        )

    def save(self, path: str | Path) -> Path:
        """Atomically persist the state (the per-day commit point)."""
        return write_json_atomic(path, self.as_json())

    @classmethod
    def load(cls, path: str | Path) -> "LifecycleState | None":
        """Load persisted state; None when *path* does not exist."""
        import json

        path = Path(path)
        if not path.exists():
            return None
        return cls.from_json(json.loads(path.read_text(encoding="utf-8")))
