"""Text report of the Sec. III dynamics analyses.

:func:`dynamics_report` assembles every Sec. III analysis (duration
histograms, weekly patterns, consistency, spatial correlation) into one
human-readable report string.  Used by the ``hotspot-repro analyze``
CLI command; the benchmarks render the same analyses individually.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.patterns import pattern_consistency, weekly_patterns
from repro.analysis.spatial import spatial_correlation
from repro.analysis.temporal import (
    consecutive_period_histogram,
    days_per_week_histogram,
    hours_per_day_histogram,
    weeks_as_hotspot_histogram,
)
from repro.data.dataset import Dataset

__all__ = ["dynamics_report"]


def _bar(fraction: float, width: int = 32) -> str:
    return "#" * int(round(fraction * width))


def _histogram_block(title: str, support, relative, min_show: float = 0.005) -> list[str]:
    lines = [title]
    peak = float(max(relative)) if len(relative) else 1.0
    for value, fraction in zip(support, relative):
        if fraction > min_show:
            lines.append(f"  {value:>3} {fraction:6.3f} {_bar(fraction / peak)}")
    return lines


def dynamics_report(
    dataset: Dataset,
    top_patterns: int = 15,
    spatial_max_sectors: int | None = 80,
) -> str:
    """Render the full Sec. III dynamics report for a scored dataset.

    Parameters
    ----------
    dataset:
        Dataset with scores and labels attached.
    top_patterns:
        Number of weekly patterns to list (paper Table II shows 20).
    spatial_max_sectors:
        Subsample size for the spatial correlation analysis (None = all
        sectors; quadratic cost).
    """
    dataset.require_scores()
    lines: list[str] = []
    lines.append(
        f"== network: {dataset.n_sectors} sectors, "
        f"{dataset.time_axis.n_weeks} weeks =="
    )
    lines.append(
        f"hot rates: hourly {dataset.labels_hourly.mean():.1%}, "
        f"daily {dataset.labels_daily.mean():.1%}, "
        f"weekly {dataset.labels_weekly.mean():.1%}"
    )

    hours, rel = hours_per_day_histogram(dataset.labels_hourly)
    lines.append("")
    lines.extend(_histogram_block("-- hours/day as hot spot (Fig. 6A) --", hours, rel))

    days, rel = days_per_week_histogram(dataset.labels_daily)
    lines.append("")
    lines.extend(
        _histogram_block("-- days/week as hot spot (Fig. 6B) --", days, rel, 0.0)
    )

    weeks, rel = weeks_as_hotspot_histogram(dataset.labels_weekly)
    lines.append("")
    lines.extend(_histogram_block("-- weeks as hot spot (Fig. 6C) --", weeks, rel))

    lengths, rel = consecutive_period_histogram(dataset.labels_daily)
    lines.append("")
    lines.extend(
        _histogram_block(
            "-- consecutive days as hot spot (Fig. 7B, first 15) --",
            lengths[:15],
            rel[:15],
        )
    )

    table = weekly_patterns(dataset.labels_daily)
    lines.append("")
    lines.append(f"-- top {top_patterns} weekly patterns (Table II) --")
    lines.append(f"  (never-hot weeks: {table.never_hot_fraction:.1%}, excluded)")
    for pattern, pct in table.top(top_patterns):
        lines.append(f"  {pattern}   {pct:5.1f} %")

    consistency = pattern_consistency(dataset.labels_daily)
    if consistency.size:
        pct = np.percentile(consistency, [5, 25, 50, 75, 95])
        lines.append("")
        lines.append(
            f"weekly pattern consistency: mean {consistency.mean():.2f}; "
            "p5/p25/p50/p75/p95 = " + "/".join(f"{v:.2f}" for v in pct)
        )

    result = spatial_correlation(
        dataset.labels_hourly,
        dataset.geography,
        n_nearest=100,
        n_best=40,
        max_sectors=spatial_max_sectors,
    )
    lines.append("")
    lines.append("-- spatial correlation vs distance (Fig. 8) --")
    lines.append(f"  {'km':>6} {'avg med':>8} {'max med':>8} {'best med':>9}")
    for row in result.summary_rows():
        lines.append(
            f"  {row['distance_km']:>6} {row['average_median']:8.2f} "
            f"{row['maximum_median']:8.2f} {row['best_median']:9.2f}"
        )
    return "\n".join(lines)
