"""Hot spot dynamics analyses (paper Sec. III).

* :mod:`repro.analysis.temporal` — duration histograms (Figs. 6-7);
* :mod:`repro.analysis.patterns` — weekly pattern mining and temporal
  consistency (Table II);
* :mod:`repro.analysis.spatial` — distance-bucketed correlation
  analysis (Fig. 8).
"""

from repro.analysis.patterns import (
    WeeklyPatternTable,
    pattern_consistency,
    weekly_patterns,
)
from repro.analysis.report import dynamics_report
from repro.analysis.spatial import SpatialCorrelation, spatial_correlation
from repro.analysis.temporal import (
    consecutive_period_histogram,
    days_per_week_histogram,
    hours_per_day_histogram,
    weeks_as_hotspot_histogram,
)

__all__ = [
    "SpatialCorrelation",
    "WeeklyPatternTable",
    "consecutive_period_histogram",
    "days_per_week_histogram",
    "dynamics_report",
    "hours_per_day_histogram",
    "pattern_consistency",
    "spatial_correlation",
    "weekly_patterns",
    "weeks_as_hotspot_histogram",
]
