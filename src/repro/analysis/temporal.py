"""Temporal duration statistics of hot spots (paper Figs. 6-7).

All functions operate on binary hot spot label matrices and return
``(support, relative_counts)`` pairs ready for printing or plotting:

* :func:`hours_per_day_histogram` — how many hours per day a sector is
  hot (Fig. 6A; the paper finds a threshold near 16 hours, matching an
  8-hour sleeping pattern);
* :func:`days_per_week_histogram` — days per week as hot spot (Fig. 6B;
  peaks at 1, 2, 5, and 7 days);
* :func:`weeks_as_hotspot_histogram` — number of weeks a sector is hot
  (Fig. 6C; a population is hot the entire period);
* :func:`consecutive_period_histogram` — run lengths of consecutive hot
  hours/days (Fig. 7).
"""

from __future__ import annotations

import numpy as np

from repro.data.tensor import HOURS_PER_DAY
from repro.stats.runs import run_length_histogram

__all__ = [
    "hours_per_day_histogram",
    "days_per_week_histogram",
    "weeks_as_hotspot_histogram",
    "consecutive_period_histogram",
]

_DAYS_PER_WEEK = 7


def _validate_binary(labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValueError(f"labels must be 2-D (sectors, time), got {labels.shape}")
    if not np.isin(labels, (0, 1)).all():
        raise ValueError("labels must be binary (0/1)")
    return labels.astype(np.int64)


def hours_per_day_histogram(labels_hourly: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distribution of hours-per-day as hot spot over all hot sector-days.

    Parameters
    ----------
    labels_hourly:
        ``Y^h``, shape ``(n, m_h)``.

    Returns
    -------
    (hours, relative_counts):
        ``hours`` is 1..24; counts are normalised over sector-days with
        at least one hot hour.
    """
    labels = _validate_binary(labels_hourly)
    n, m_h = labels.shape
    n_days = m_h // HOURS_PER_DAY
    per_day = labels[:, : n_days * HOURS_PER_DAY].reshape(n, n_days, HOURS_PER_DAY)
    hot_hours = per_day.sum(axis=2).ravel()
    hot_hours = hot_hours[hot_hours > 0]
    counts = np.bincount(hot_hours, minlength=HOURS_PER_DAY + 1)[1:]
    total = counts.sum()
    relative = counts / total if total else counts.astype(np.float64)
    return np.arange(1, HOURS_PER_DAY + 1), relative


def days_per_week_histogram(labels_daily: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distribution of days-per-week as hot spot over all hot sector-weeks.

    Returns ``(days, relative_counts)`` with days 1..7, normalised over
    sector-weeks with at least one hot day (Fig. 6B).
    """
    labels = _validate_binary(labels_daily)
    n, m_d = labels.shape
    n_weeks = m_d // _DAYS_PER_WEEK
    per_week = labels[:, : n_weeks * _DAYS_PER_WEEK].reshape(n, n_weeks, _DAYS_PER_WEEK)
    hot_days = per_week.sum(axis=2).ravel()
    hot_days = hot_days[hot_days > 0]
    counts = np.bincount(hot_days, minlength=_DAYS_PER_WEEK + 1)[1:]
    total = counts.sum()
    relative = counts / total if total else counts.astype(np.float64)
    return np.arange(1, _DAYS_PER_WEEK + 1), relative


def weeks_as_hotspot_histogram(
    labels_weekly: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Distribution of the number of weeks each sector is hot (Fig. 6C).

    Returns ``(weeks, relative_counts)`` with weeks 1..m_w, normalised
    over sectors that are hot at least one week.
    """
    labels = _validate_binary(labels_weekly)
    m_w = labels.shape[1]
    weeks_hot = labels.sum(axis=1)
    weeks_hot = weeks_hot[weeks_hot > 0]
    counts = np.bincount(weeks_hot, minlength=m_w + 1)[1:]
    total = counts.sum()
    relative = counts / total if total else counts.astype(np.float64)
    return np.arange(1, m_w + 1), relative


def consecutive_period_histogram(
    labels: np.ndarray, max_length: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of consecutive hot periods (Fig. 7).

    Pass hourly labels for consecutive-hours, daily labels for
    consecutive-days.  Runs are measured per sector and pooled.
    """
    return run_length_histogram(_validate_binary(labels), max_length=max_length)
