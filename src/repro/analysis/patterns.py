"""Weekly hot spot pattern mining (paper Table II) and consistency.

A *weekly pattern* is the 7-bit vector of a sector's daily hot spot
labels over one Monday-aligned week; with 7 days there are 127 possible
non-empty patterns.  :func:`weekly_patterns` counts pattern frequencies
over all sector-weeks, excludes the never-hot pattern (as the paper does
for confidentiality), and renders them in the paper's
``M T W T F S S`` notation.

:func:`pattern_consistency` computes, per sector, the correlation
between its average weekly pattern and each of its individual weekly
patterns — the paper reports an average of 0.6 with quartiles around
0.41 / 0.68 / 0.88.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.correlation import pairwise_pearson

__all__ = ["WeeklyPatternTable", "weekly_patterns", "pattern_consistency", "format_pattern"]

_DAYS_PER_WEEK = 7
_DAY_LETTERS = ("M", "T", "W", "T", "F", "S", "S")


def format_pattern(bits: tuple[int, ...]) -> str:
    """Render a 7-bit pattern in the paper's notation.

    Hot days show their day letter, cold days a hyphen:
    ``(1,1,1,1,1,0,0)`` becomes ``"M T W T F - -"``.
    """
    if len(bits) != _DAYS_PER_WEEK:
        raise ValueError(f"pattern must have 7 bits, got {len(bits)}")
    return " ".join(
        letter if bit else "-" for letter, bit in zip(_DAY_LETTERS, bits)
    )


@dataclass(frozen=True)
class WeeklyPatternTable:
    """Ranked weekly pattern frequencies (paper Table II).

    Attributes
    ----------
    patterns:
        Patterns as 7-bit tuples, most frequent first, excluding the
        never-hot pattern.
    relative_counts:
        Percentages normalised over the non-empty patterns.
    never_hot_fraction:
        Fraction of all sector-weeks with the never-hot pattern (the
        paper hides this; we keep it available for analysis).
    """

    patterns: list[tuple[int, ...]]
    relative_counts: np.ndarray
    never_hot_fraction: float

    def top(self, count: int = 20) -> list[tuple[str, float]]:
        """The *count* most frequent patterns, formatted, with percentages."""
        return [
            (format_pattern(p), float(c))
            for p, c in zip(self.patterns[:count], self.relative_counts[:count])
        ]


def weekly_patterns(labels_daily: np.ndarray) -> WeeklyPatternTable:
    """Mine weekly pattern frequencies from daily labels.

    Parameters
    ----------
    labels_daily:
        ``Y^d``, shape ``(n, m_d)``, Monday-aligned (day 0 is a Monday,
        as in the paper's data and the synthetic generator).
    """
    labels = np.asarray(labels_daily)
    if labels.ndim != 2:
        raise ValueError(f"labels must be 2-D, got {labels.shape}")
    if not np.isin(labels, (0, 1)).all():
        raise ValueError("labels must be binary (0/1)")
    n, m_d = labels.shape
    n_weeks = m_d // _DAYS_PER_WEEK
    if n_weeks == 0:
        raise ValueError("need at least one full week of labels")
    weeks = labels[:, : n_weeks * _DAYS_PER_WEEK].reshape(-1, _DAYS_PER_WEEK)

    codes = weeks @ (1 << np.arange(_DAYS_PER_WEEK))
    counts = np.bincount(codes, minlength=128)
    never_hot = counts[0]
    total_nonempty = counts[1:].sum()
    never_fraction = never_hot / codes.size if codes.size else float("nan")

    order = np.argsort(-counts[1:], kind="stable") + 1
    patterns: list[tuple[int, ...]] = []
    relative: list[float] = []
    for code in order:
        if counts[code] == 0:
            break
        bits = tuple((code >> day) & 1 for day in range(_DAYS_PER_WEEK))
        patterns.append(bits)
        relative.append(100.0 * counts[code] / total_nonempty if total_nonempty else 0.0)
    return WeeklyPatternTable(
        patterns=patterns,
        relative_counts=np.asarray(relative),
        never_hot_fraction=float(never_fraction),
    )


def pattern_consistency(labels_daily: np.ndarray) -> np.ndarray:
    """Per-sector correlation between the mean weekly pattern and each week.

    Sectors whose label series is entirely constant (never or always
    hot) are excluded — correlation is undefined for them.

    Returns
    -------
    numpy.ndarray
        One mean correlation per retained sector.
    """
    labels = np.asarray(labels_daily, dtype=np.float64)
    if labels.ndim != 2:
        raise ValueError(f"labels must be 2-D, got {labels.shape}")
    n, m_d = labels.shape
    n_weeks = m_d // _DAYS_PER_WEEK
    if n_weeks < 2:
        raise ValueError("need at least two full weeks to measure consistency")
    weekly = labels[:, : n_weeks * _DAYS_PER_WEEK].reshape(n, n_weeks, _DAYS_PER_WEEK)

    out: list[float] = []
    for sector_weeks in weekly:
        mean_pattern = sector_weeks.mean(axis=0)
        if mean_pattern.std() == 0:
            continue
        variable = sector_weeks.std(axis=1) > 0
        if not variable.any():
            continue
        correlations = pairwise_pearson(mean_pattern, sector_weeks[variable])
        out.append(float(correlations.mean()))
    return np.asarray(out)
