"""Spatial correlation analysis of hot spot sequences (paper Fig. 8).

Three related experiments, all over the hourly labels ``Y^h``:

* **average** (Fig. 8A): for each sector, correlate its label series
  with its 500 spatially closest sectors, bucket the correlations by
  distance (log-spaced buckets with a dedicated same-tower bucket at
  0 km), and take the per-sector *average* per bucket;
* **maximum** (Fig. 8B): same, but take the per-sector *maximum* per
  bucket;
* **best** (Fig. 8C): for each sector, find its 100 most correlated
  sectors regardless of distance, bucket those by distance, and take
  the per-sector maximum — showing that near-twin behaviours exist at
  any distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import SectorGeography
from repro.stats.buckets import LogBuckets
from repro.stats.correlation import pairwise_pearson, pearson_matrix_to_targets

__all__ = ["SpatialCorrelation", "spatial_correlation"]


@dataclass(frozen=True)
class SpatialCorrelation:
    """Distance-bucketed correlation summaries.

    Each attribute is a list with one array per distance bucket holding
    the per-sector summary values that fall into that bucket.

    Attributes
    ----------
    buckets:
        The bucketing used (labels give the km axis).
    average, maximum, best:
        Per-bucket arrays of per-sector average / maximum / best-match
        correlations (paper Fig. 8 A/B/C).
    """

    buckets: LogBuckets
    average: list[np.ndarray]
    maximum: list[np.ndarray]
    best: list[np.ndarray]

    def summary_rows(self) -> list[dict]:
        """One row per bucket with median and upper-quartile statistics."""
        rows = []
        for index, label in enumerate(self.buckets.labels):
            row = {"distance_km": label}
            for name, data in (
                ("average", self.average[index]),
                ("maximum", self.maximum[index]),
                ("best", self.best[index]),
            ):
                if data.size:
                    row[f"{name}_median"] = float(np.median(data))
                    row[f"{name}_q75"] = float(np.percentile(data, 75))
                    row[f"{name}_n"] = int(data.size)
                else:
                    row[f"{name}_median"] = float("nan")
                    row[f"{name}_q75"] = float("nan")
                    row[f"{name}_n"] = 0
            rows.append(row)
        return rows


def spatial_correlation(
    labels_hourly: np.ndarray,
    geography: SectorGeography,
    n_nearest: int = 500,
    n_best: int = 100,
    buckets: LogBuckets | None = None,
    max_sectors: int | None = None,
    seed: int = 0,
) -> SpatialCorrelation:
    """Run the three spatial correlation experiments.

    Parameters
    ----------
    labels_hourly:
        ``Y^h``, shape ``(n, m_h)``.
    geography:
        Sector positions (same-tower sectors share coordinates).
    n_nearest:
        Neighbourhood size for the average/maximum experiments
        (paper: 500; clipped to n-1).
    n_best:
        Number of most-correlated sectors for the best experiment
        (paper: 100; clipped to n-1).
    buckets:
        Distance buckets; defaults to the paper's axis.
    max_sectors:
        Optional subsample of reference sectors, for speed.
    seed:
        Seed for the subsample.
    """
    labels = np.asarray(labels_hourly, dtype=np.float64)
    if labels.ndim != 2:
        raise ValueError(f"labels must be 2-D, got {labels.shape}")
    n = labels.shape[0]
    if geography.n_sectors != n:
        raise ValueError(
            f"geography has {geography.n_sectors} sectors, labels have {n}"
        )
    if n < 3:
        raise ValueError("need at least three sectors")
    buckets = buckets or LogBuckets()
    n_nearest = min(n_nearest, n - 1)
    n_best = min(n_best, n - 1)

    if max_sectors is not None and max_sectors < n:
        reference = np.random.default_rng(seed).choice(n, size=max_sectors, replace=False)
    else:
        reference = np.arange(n)

    # Full correlation matrix once (n x n); cheap at laptop scale and
    # shared by the nearest and best experiments.
    corr = pearson_matrix_to_targets(labels)

    n_buckets = buckets.n_buckets
    average = [[] for _ in range(n_buckets)]
    maximum = [[] for _ in range(n_buckets)]
    best = [[] for _ in range(n_buckets)]

    for sector in reference:
        distances = geography.distances_from(int(sector))
        distances[sector] = np.inf

        # --- nearest-neighbour experiments (Fig. 8A/B)
        neighbours = np.argsort(distances, kind="stable")[:n_nearest]
        neighbour_corr = corr[sector, neighbours]
        neighbour_bucket = buckets.assign(distances[neighbours])
        for bucket in np.unique(neighbour_bucket):
            values = neighbour_corr[neighbour_bucket == bucket]
            average[bucket].append(values.mean())
            maximum[bucket].append(values.max())

        # --- best-match experiment (Fig. 8C)
        candidates = corr[sector].copy()
        candidates[sector] = -np.inf
        top = np.argsort(-candidates, kind="stable")[:n_best]
        top_bucket = buckets.assign(distances[top])
        for bucket in np.unique(top_bucket):
            values = candidates[top][top_bucket == bucket]
            best[bucket].append(values.max())

    def collect(store: list[list[float]]) -> list[np.ndarray]:
        return [np.asarray(bucket_values, dtype=np.float64) for bucket_values in store]

    return SpatialCorrelation(
        buckets=buckets,
        average=collect(average),
        maximum=collect(maximum),
        best=collect(best),
    )
