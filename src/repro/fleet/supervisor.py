"""Self-healing fleet backend: heartbeats, live restart, degraded shards.

:class:`FleetSupervisor` is a third fleet backend (DESIGN.md 3h) that
runs **one forked host process per shard** and survives that process
dying or hanging mid-stream.  Payloads travel over the pipe itself (no
shared-memory broadcast): each shard's request is self-contained, so the
supervisor can re-send it verbatim to a respawned worker — the price is
a pickle per request, the prize is restartability.

The liveness protocol per request:

* the reply is awaited under a ``heartbeat_secs`` deadline; a worker
  that is *alive* but silent past it is **slow** — the deadline doubles
  for up to ``slow_retries`` patience windows (each one a counted
  ``heartbeat_timeout``) before the worker is declared **hung** and
  SIGKILLed onto the dead path;
* a worker whose process exited (or whose pipe broke) is **dead**
  immediately — no patience windows.

Dead workers go through **restart-with-recovery**: respawn the host
with ``resume=True`` (snapshot + WAL replay via
:func:`~repro.fleet.worker.build_worker`), then re-send the in-flight
request unchanged.  The worker's apply → persist → journal seams
guarantee the re-driven request returns a bitwise-identical response
(hours already journaled re-emit their persisted responses), so a
within-budget recovery is invisible in the merged stream — restart
bookkeeping is reported *out of stream* (telemetry + ``on_event``), not
as JSONL events.

Two conditions end the restart loop:

* **poison**: ``poison_threshold`` consecutive deaths on the *same*
  request quarantine it — the offending payload goes to the
  coordinator's dead-letter queue, the worker is respawned, and the
  shard's rows are re-driven as all-missing (the same synthesis a gap
  fill uses), with an in-stream ``poison_block`` event;
* **budget**: more than ``max_restarts`` consecutive deaths (the
  counter resets on any successful response) put the shard in
  **degraded mode** — an in-stream ``shard_degraded`` event fires, and
  until a restart succeeds the supervisor serves the shard itself:
  ticks are *spooled* into the shard's own WAL (so full-fleet recovery
  and a later rejoin see an unbroken journal), score fragments come
  from the shared degradation ladder
  (:func:`~repro.resilience.degrade.fallback_scores`: last good
  fragment → seeded random; the Persist rung needs ring state, which
  died with the worker), and the shard's sectors are dark-masked so
  merged alerts never claim knowledge of them.  Every request first
  attempts a rejoin; when the respawn recovers through the spooled WAL
  to the fleet clock, the next successful response emits
  ``shard_recovered`` and the stream is back on the baseline — bitwise,
  because the spool holds the true validated rows.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.store import write_json_atomic
from repro.data.tensor import HOURS_PER_DAY
from repro.fleet.partition import PartitionPlan
from repro.fleet.recovery import journal_clock
from repro.fleet.worker import (
    EVENTS_NAME,
    FleetConfig,
    ShardWorker,
    build_worker,
)
from repro.parallel.pool import PoolUnavailable
from repro.resilience.chaos import (
    ProcessChaos,
    corrupt_wal_tail,
    install_process_faults,
)
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.degrade import fallback_scores
from repro.serve.ingest import default_calendar_row
from repro.serve.telemetry import ServeTelemetry

__all__ = ["STATE_NAME", "FleetSupervisor", "SupervisorConfig"]

#: Fleet-level supervisor status file (restart counts, degraded shards),
#: written atomically on every supervision transition and at close.
STATE_NAME = "supervisor.json"


@dataclass(frozen=True)
class SupervisorConfig:
    """Liveness and recovery policy for :class:`FleetSupervisor`.

    Parameters
    ----------
    heartbeat_secs:
        Base reply deadline per request.  Workers silent past it while
        still alive get ``slow_retries`` exponentially doubled patience
        windows before being declared hung.
    slow_retries:
        Patience windows granted to a slow-but-alive worker.
    max_restarts:
        Consecutive-death restart budget per shard (reset by any
        successful response).  ``0`` degrades on the first death.
    poison_threshold:
        Consecutive deaths on the *same* request that quarantine it as
        a poison block instead of burning the whole budget.  Detection
        requires the budget to allow at least this many deliveries.
    fallback_seed:
        Seed for the random rung of degraded-shard score fragments.
    """

    heartbeat_secs: float = 5.0
    slow_retries: int = 2
    max_restarts: int = 3
    poison_threshold: int = 2
    fallback_seed: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_secs <= 0:
            raise ValueError(
                f"heartbeat_secs must be > 0, got {self.heartbeat_secs}"
            )
        if self.slow_retries < 0:
            raise ValueError(f"slow_retries must be >= 0, got {self.slow_retries}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )


def _shard_host_main(conn, directory, plan, config, shard_id, resume, chaos):
    """Supervised child: host exactly one shard worker over a pipe.

    The single-shard twin of the process backend's ``_host_main`` —
    payload arrays arrive *in* the request (no shared memory), so the
    parent can replay a request verbatim after respawning this process.
    """
    try:
        worker = build_worker(Path(directory), plan, shard_id, config, resume=resume)
        if chaos is not None:
            install_process_faults(worker, chaos)
        conn.send(("hello", worker.ingestor.hours_seen))
    except Exception as error:  # noqa: BLE001 - report, then die
        try:
            conn.send(("fatal", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
        return
    try:
        while True:
            try:
                request = conn.recv()
            except EOFError:
                break
            op = request[0]
            try:
                if op == "tick":
                    _, hour, values, missing, calendar_row = request
                    payload = worker.submit(hour, values, missing, calendar_row)
                elif op == "tick_block":
                    _, first_hour, values, missing, rows, released = request
                    payload = worker.submit_block(
                        first_hour, values, missing, rows,
                        released_before=released,
                    )
                elif op == "ring":
                    payload = worker.ring_payload(request[1])
                elif op == "predict":
                    _, horizon, model, window = request
                    payload = worker.predict_fragment(
                        horizon, model=model, window=window
                    )
                elif op == "stats":
                    payload = worker.stats()
                elif op == "telemetry":
                    payload = worker.engine.telemetry
                elif op == "close":
                    worker.close()
                    conn.send(("ok", None))
                    break
                else:
                    raise ValueError(f"unknown supervised fleet op {op!r}")
                conn.send(("ok", payload))
            except Exception as error:  # noqa: BLE001 - relay to the parent
                conn.send(("err", f"{type(error).__name__}: {error}"))
    finally:
        try:
            worker.checkpoint.close()
        except Exception:  # noqa: BLE001 - exiting anyway
            pass


class _ShardHost:
    """Parent-side record of one supervised shard host process."""

    def __init__(self, shard_id: int, n_local: int) -> None:
        self.shard_id = shard_id
        self.n_local = n_local
        self.process = None
        self.conn = None
        self.hours = 0  # clock reported at the last hello
        self.restarts = 0  # successful respawns, lifetime
        self.consecutive_deaths = 0  # since the last successful response
        self.death_key = None  # request identity of the last death
        self.deaths_on_key = 0
        self.degraded = False
        self.degraded_since: float | None = None
        self.last_good: dict[str, list[float]] = {}  # horizon -> fragment
        self.pending: list[dict] = []  # in-stream events awaiting a response
        self.spool: CheckpointManager | None = None
        self.spool_clock: int | None = None  # durable journal hour count
        self.wal_corrupted = False  # chaos tail corruption already applied


def _key_label(key: tuple) -> dict:
    """Human/JSON-facing identity of an in-flight request key."""
    if key[0] == "tick":
        return {"op": "tick", "hour": int(key[1])}
    if key[0] == "tick_block":
        return {"op": "tick_block", "first_hour": int(key[1]), "n_hours": int(key[2])}
    return {"op": str(key[0])}


class FleetSupervisor:
    """Backend running one supervised, restartable process per shard.

    Same driving surface as :class:`~repro.fleet.coordinator
    .SerialBackend` / ``ProcessBackend`` plus the supervision protocol
    described in the module docstring.  Raises
    :class:`~repro.parallel.pool.PoolUnavailable` when the platform
    cannot fork, letting :func:`~repro.fleet.coordinator.build_fleet`
    degrade to the serial backend.
    """

    name = "supervised"

    #: Hours per pipe-shipped block; larger blocks are split by the
    #: coordinator so a restart never replays more than a day's payload.
    block_capacity: int = HOURS_PER_DAY

    def __init__(
        self,
        directory: str | Path,
        plan: PartitionPlan,
        config: FleetConfig,
        resume: bool,
        supervise: SupervisorConfig | None = None,
        chaos: ProcessChaos | None = None,
        on_event=None,
    ) -> None:
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as error:
            raise PoolUnavailable(
                f"fork start method unavailable: {error}"
            ) from error
        self.directory = Path(directory)
        self.plan = plan
        self.config = config
        self.supervise = supervise or SupervisorConfig()
        self.chaos = chaos
        self.on_event = on_event
        self.telemetry = ServeTelemetry()
        #: Every supervision event, in order (the CI artifact payload).
        self.events: list[dict] = []
        self._coordinator = None
        self._degraded_seconds = 0.0
        self.hosts = [
            _ShardHost(shard, int(plan.sectors_of(shard).size))
            for shard in range(plan.n_shards)
        ]
        try:
            for host in self.hosts:
                self._spawn(host, resume)
            for host in self.hosts:
                reply = self._await(host)
                if reply is None or reply[0] != "hello":
                    raise RuntimeError(
                        f"shard host {host.shard_id} failed to start: "
                        f"{None if reply is None else reply[1]}"
                    )
                host.hours = int(reply[1])
        except Exception as error:  # noqa: BLE001 - leave no children behind
            self.close()
            if isinstance(error, PoolUnavailable):
                raise
            raise PoolUnavailable(
                f"cannot start supervised shard hosts: {error}"
            ) from error

    def bind(self, coordinator) -> None:
        """Attach the owning coordinator (dead-letter queue, fleet clock)."""
        self._coordinator = coordinator

    # -------------------------------------------------------------- driving
    def submit_hour(self, hour, values, missing, calendar_row) -> list[dict]:
        responses = []
        for host in self.hosts:
            ids = self.plan.sectors_of(host.shard_id)
            responses.append(
                self._drive_tick(
                    host,
                    int(hour),
                    values[ids, :],
                    missing[ids, :],
                    calendar_row,
                )
            )
        return responses

    def submit_block(
        self, first_hour, values, missing, calendar_rows, released_before=None
    ) -> list[list[dict]]:
        responses = []
        for host in self.hosts:
            ids = self.plan.sectors_of(host.shard_id)
            responses.append(
                self._drive_block(
                    host,
                    int(first_hour),
                    values[ids, :, :],
                    missing[ids, :, :],
                    calendar_rows,
                    released_before,
                )
            )
        return responses

    def _drive_tick(self, host, hour, values, missing, calendar_row):
        if host.degraded and not self._try_rejoin(host, hour):
            return self._degraded_tick(host, hour, values, missing, calendar_row)
        request = ("tick", hour, values, missing, calendar_row)

        def substitute():
            return (
                "tick",
                hour,
                np.full_like(values, np.nan),
                np.ones_like(missing),
                calendar_row,
            )

        payload = self._exchange(host, request, ("tick", hour), substitute)
        if payload is None:
            return self._degraded_tick(host, hour, values, missing, calendar_row)
        return self._success(host, payload)

    def _drive_block(
        self, host, first_hour, values, missing, calendar_rows, released_before
    ):
        if host.degraded and not self._try_rejoin(host, first_hour):
            return self._degraded_block(
                host, first_hour, values, missing, calendar_rows
            )
        request = (
            "tick_block", first_hour, values, missing, calendar_rows,
            released_before,
        )
        key = ("tick_block", first_hour, int(values.shape[1]))

        def substitute():
            return (
                "tick_block",
                first_hour,
                np.full_like(values, np.nan),
                np.ones_like(missing),
                calendar_rows,
                released_before,
            )

        payload = self._exchange(host, request, key, substitute)
        if payload is None:
            return self._degraded_block(
                host, first_hour, values, missing, calendar_rows
            )
        return self._success(host, payload)

    # ------------------------------------------------------- liveness core
    def _exchange(self, host, request, key, substitute=None):
        """Send *request* and supervise the reply.

        Returns the payload, or ``None`` once the shard is degraded.
        Worker deaths respawn-and-resend within the budget; repeated
        deaths on the same *key* quarantine it via *substitute*.
        """
        while True:
            reply = None
            if host.conn is not None:
                try:
                    host.conn.send(request)
                except (BrokenPipeError, OSError):
                    reply = None
                else:
                    reply = self._await(host)
            if reply is not None:
                kind, payload = reply
                if kind == "ok":
                    return payload
                if kind == "err":
                    raise RuntimeError(
                        f"shard host {host.shard_id} failed: {payload}"
                    )
                # "fatal" (or anything else): fall through to the dead path.
            action = self._handle_death(host, key)
            if action == "degrade":
                return None
            if action == "poison" and substitute is not None:
                request = substitute()
                key = (*key, "quarantined")
            # "retry" (and "poison") loop back and re-send.

    def _await(self, host):
        """Wait for one reply under the heartbeat/patience protocol.

        Returns the ``(kind, payload)`` tuple, or ``None`` when the
        worker is dead (exited, broken pipe) or was declared hung and
        SIGKILLed.
        """
        window = self.supervise.heartbeat_secs
        retries = 0
        deadline = time.monotonic() + window
        while True:
            try:
                if host.conn.poll(0.05):
                    return host.conn.recv()
            except (EOFError, OSError):
                return None
            if not host.process.is_alive():
                # Drain a reply that raced the exit, then report death.
                try:
                    if host.conn.poll(0):
                        return host.conn.recv()
                except (EOFError, OSError):
                    pass
                return None
            if time.monotonic() >= deadline:
                if retries >= self.supervise.slow_retries:
                    self._event(
                        "worker_hang",
                        shard=host.shard_id,
                        patience_windows=retries,
                    )
                    host.process.kill()
                    host.process.join(timeout=10)
                    return None
                retries += 1
                window *= 2
                self.telemetry.inc("heartbeat_timeouts")
                self._event(
                    "heartbeat_timeout",
                    shard=host.shard_id,
                    retry=retries,
                    next_window_secs=window,
                )
                deadline = time.monotonic() + window

    def _handle_death(self, host, key) -> str:
        """Classify a worker death; returns ``retry|poison|degrade``."""
        self._reap(host)
        host.consecutive_deaths += 1
        if key == host.death_key:
            host.deaths_on_key += 1
        else:
            host.death_key = key
            host.deaths_on_key = 1
        self._event(
            "worker_death",
            shard=host.shard_id,
            consecutive=host.consecutive_deaths,
            **_key_label(key),
        )
        if host.deaths_on_key >= self.supervise.poison_threshold:
            return self._quarantine(host, key)
        if host.consecutive_deaths > self.supervise.max_restarts:
            self._mark_degraded(host, key)
            return "degrade"
        if self._respawn(host):
            return "retry"
        # The respawn itself died: count it and re-evaluate (bounded —
        # consecutive_deaths grows monotonically until the budget trips).
        return self._handle_death(host, key)

    def _quarantine(self, host, key) -> str:
        """Poison block: dead-letter the request, re-drive it as missing."""
        label = _key_label(key)
        self.telemetry.inc("poison_blocks")
        if self._coordinator is not None:
            self._coordinator.dead_letters.push(
                "poison_block",
                hour=label.get("hour", label.get("first_hour")),
                detail=(
                    f"shard {host.shard_id} died {host.deaths_on_key}x on "
                    f"{label['op']}"
                ),
                shard=host.shard_id,
            )
        if self.chaos is not None:
            lo = label.get("hour", label.get("first_hour", 0))
            hi = lo + label.get("n_hours", 1)
            self.chaos.disarm(host.shard_id, lo, hi)
        host.pending.append(
            self._event(
                "poison_block",
                shard=host.shard_id,
                deaths=host.deaths_on_key,
                **label,
            )
        )
        host.death_key = None
        host.deaths_on_key = 0
        if self._respawn(host):
            return "poison"
        self._mark_degraded(host, key)
        return "degrade"

    def _mark_degraded(self, host, key) -> None:
        if not host.degraded:
            host.degraded = True
            host.degraded_since = time.monotonic()
            self.telemetry.inc("degraded_shards")
            host.pending.append(
                self._event(
                    "shard_degraded",
                    shard=host.shard_id,
                    restart_budget=self.supervise.max_restarts,
                    **_key_label(key),
                )
            )
        self._write_state()

    def _respawn(self, host, expect_hours: int | None = None) -> bool:
        """Respawn *host* with recovery; ``True`` when it comes up clean."""
        self._reap(host)
        self._close_spool(host)
        if (
            self.chaos is not None
            and host.shard_id in self.chaos.wal_tail_shards
            and not host.wal_corrupted
        ):
            marker = Path(self.chaos.marker_dir) / f"walcorrupt-shard{host.shard_id}"
            if not marker.exists():
                segment = corrupt_wal_tail(self._shard_dir(host))
                marker.parent.mkdir(parents=True, exist_ok=True)
                marker.touch()
                self._event(
                    "wal_tail_corrupted",
                    shard=host.shard_id,
                    segment=None if segment is None else segment.name,
                )
            host.wal_corrupted = True
        try:
            self._spawn(host, resume=True)
        except OSError:
            return False
        reply = self._await(host)
        if reply is None or reply[0] != "hello":
            self._reap(host)
            return False
        hours = int(reply[1])
        if expect_hours is not None and hours != expect_hours:
            self._event(
                "rejoin_failed",
                shard=host.shard_id,
                recovered_hours=hours,
                expected_hours=expect_hours,
            )
            self._reap(host)
            return False
        host.hours = hours
        host.restarts += 1
        self.telemetry.inc("worker_restarts")
        self._event(
            "worker_restart",
            shard=host.shard_id,
            recovered_hours=hours,
            restarts=host.restarts,
        )
        self._write_state()
        return True

    def _try_rejoin(self, host, expect_hour: int) -> bool:
        """Degraded shard: attempt a restart up to the fleet clock.

        Must run *before* the current request is spooled — a successful
        rejoin recovers through the spooled WAL to exactly *expect_hour*
        and then serves the current request live.
        """
        return self._respawn(host, expect_hours=expect_hour)

    def _success(self, host, payload):
        host.consecutive_deaths = 0
        host.death_key = None
        host.deaths_on_key = 0
        responses = payload if isinstance(payload, list) else [payload]
        for response in responses:
            for horizon, fragment in response.get("scores", {}).items():
                host.last_good[horizon] = [float(s) for s in fragment]
        if host.degraded:
            elapsed = (
                0.0
                if host.degraded_since is None
                else time.monotonic() - host.degraded_since
            )
            self._degraded_seconds += elapsed
            self.telemetry.observe("shard_degraded_window", elapsed)
            host.degraded = False
            host.degraded_since = None
            host.spool_clock = None
            host.pending.append(
                self._event(
                    "shard_recovered",
                    shard=host.shard_id,
                    hour=responses[0].get("hour"),
                    restarts=host.restarts,
                )
            )
            self._write_state()
        return self._attach(host, payload)

    def _attach(self, host, payload):
        """Prepend pending in-stream events to the (first) response."""
        if not host.pending:
            return payload
        events, host.pending = host.pending, []
        if isinstance(payload, list):
            return [{**payload[0], "supervisor": events}, *payload[1:]]
        return {**payload, "supervisor": events}

    # ------------------------------------------------------- degraded mode
    def _degraded_tick(self, host, hour, values, missing, calendar_row):
        self._ensure_spool(host)
        if hour < host.spool_clock:
            # The dying worker journaled this hour (post-journal crash):
            # its true response is persisted — re-emit it, bitwise.
            response = self._persisted_response(host, hour)
        else:
            self._spool(host, hour, values, missing, calendar_row)
            response = self._synthesize(host, hour)
        return self._attach(host, response)

    def _degraded_block(self, host, first_hour, values, missing, calendar_rows):
        self._ensure_spool(host)
        responses = []
        for j in range(int(values.shape[1])):
            hour = first_hour + j
            if hour < host.spool_clock:
                responses.append(self._persisted_response(host, hour))
            else:
                row = None if calendar_rows is None else calendar_rows[j]
                self._spool(host, hour, values[:, j, :], missing[:, j, :], row)
                responses.append(self._synthesize(host, hour))
        return self._attach(host, responses)

    def _ensure_spool(self, host) -> None:
        if host.spool is None:
            # Opening the manager reopens the newest WAL segment, which
            # truncates any torn tail the dead writer left — then the
            # durable clock is exact.
            host.spool = CheckpointManager(
                self._shard_dir(host),
                host.n_local,
                self.config.n_kpis,
                snapshot_every=self.config.snapshot_every,
            )
            host.spool_clock = journal_clock(self._shard_dir(host))

    def _spool(self, host, hour, values, missing, calendar_row) -> None:
        if hour < host.spool_clock:
            return
        if calendar_row is None:
            calendar_row = default_calendar_row(
                hour,
                start_weekday=self.config.start_weekday,
                start_hour=self.config.start_hour,
                start_day_of_month=self.config.start_day_of_month,
            )
        host.spool.record_tick(hour, values, missing, calendar_row)
        host.spool_clock = hour + 1
        self.telemetry.inc("spooled_ticks")

    def _close_spool(self, host) -> None:
        if host.spool is not None:
            host.spool.close()
            host.spool = None
        host.spool_clock = None

    def _synthesize(self, host, hour: int) -> dict:
        """Degraded-shard response: fallback fragments, all-dark mask."""
        response = ShardWorker._trivial_response(hour)
        if response["day_completed"]:
            t_day = response["t_day"]
            if t_day >= self.config.start_day:
                for horizon in self.config.horizons:
                    response["scores"][str(int(horizon))] = (
                        self._fallback_fragment(host, t_day, int(horizon))
                    )
            response["dark_mask"] = [True] * host.n_local
        return response

    def _fallback_fragment(self, host, t_day: int, horizon: int) -> list[float]:
        scores, level = fallback_scores(
            host.n_local,
            last_good=host.last_good.get(str(horizon)),
            seed_key=(
                self.supervise.fallback_seed, host.shard_id, t_day, horizon,
            ),
        )
        self.telemetry.inc("degraded_fragments")
        self._event(
            "degraded_fragment",
            shard=host.shard_id,
            t_day=t_day,
            horizon=horizon,
            fallback=level,
        )
        return [float(s) for s in scores]

    def _persisted_response(self, host, hour: int) -> dict:
        path = self._shard_dir(host) / EVENTS_NAME
        if path.exists():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                stored = payload.get("hours", {}).get(str(int(hour)))
                if stored is not None:
                    return stored
            except (OSError, json.JSONDecodeError):
                pass
        return ShardWorker._trivial_response(hour)

    # ------------------------------------------------------------- queries
    def ring(self, hour: int) -> list:
        payloads = []
        for host in self.hosts:
            payload = None
            if not host.degraded:
                payload = self._exchange(
                    host, ("ring", int(hour)), ("ring", int(hour))
                )
            payloads.append(payload)
        return payloads

    def predict(self, horizon, model=None, window=None) -> list[np.ndarray]:
        t_day = -1 if self._coordinator is None else self._coordinator.t_day
        fragments = []
        for host in self.hosts:
            fragment = None
            if not host.degraded:
                fragment = self._exchange(
                    host,
                    ("predict", int(horizon), model, window),
                    ("predict", int(horizon)),
                )
            if fragment is None:
                fragment = self._fallback_fragment(host, int(t_day), int(horizon))
            fragments.append(np.asarray(fragment, dtype=np.float64))
        return fragments

    def shard_hours(self) -> list[int]:
        return [host.hours for host in self.hosts]

    def stats(self) -> list[dict]:
        snapshots = []
        for host in self.hosts:
            snap = None
            if not host.degraded:
                try:
                    snap = self._exchange(host, ("stats",), ("stats",))
                except RuntimeError:
                    snap = None
            if snap is None:
                snap = {
                    "shard": {
                        "shard_id": host.shard_id,
                        "n_sectors": host.n_local,
                        "degraded": True,
                    }
                }
            snapshots.append(snap)
        return snapshots

    def telemetries(self) -> list[ServeTelemetry]:
        # The supervisor's own counters merge into the fleet snapshot
        # alongside whatever per-shard telemetry is still reachable
        # (worker telemetry is process state — it dies with the worker).
        merged = [self.telemetry]
        for host in self.hosts:
            if host.degraded:
                continue
            try:
                telemetry = self._exchange(host, ("telemetry",), ("telemetry",))
            except RuntimeError:
                telemetry = None
            if telemetry is not None:
                merged.append(telemetry)
        return merged

    @property
    def degraded_shards(self) -> list[int]:
        """Shard ids currently in degraded mode."""
        return [host.shard_id for host in self.hosts if host.degraded]

    def supervisor_stats(self) -> dict:
        """Supervision snapshot (also persisted as ``supervisor.json``)."""
        return {
            "worker_restarts": self.telemetry.counter("worker_restarts"),
            "heartbeat_timeouts": self.telemetry.counter("heartbeat_timeouts"),
            "poison_blocks": self.telemetry.counter("poison_blocks"),
            "degrade_transitions": self.telemetry.counter("degraded_shards"),
            "spooled_ticks": self.telemetry.counter("spooled_ticks"),
            "degraded_shards": self.degraded_shards,
            "degraded_seconds": round(self._time_in_degraded(), 6),
            "restarts_by_shard": {
                str(host.shard_id): host.restarts for host in self.hosts
            },
            "events": len(self.events),
        }

    def _time_in_degraded(self) -> float:
        total = self._degraded_seconds
        now = time.monotonic()
        for host in self.hosts:
            if host.degraded and host.degraded_since is not None:
                total += now - host.degraded_since
        return total

    # ------------------------------------------------------------ plumbing
    def _spawn(self, host, resume: bool) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_host_main,
            args=(
                child_conn,
                str(self.directory),
                self.plan,
                self.config,
                host.shard_id,
                resume,
                self.chaos,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        host.process = process
        host.conn = parent_conn

    def _reap(self, host) -> None:
        """Ensure *host*'s process is gone and its pipe closed."""
        process, conn = host.process, host.conn
        host.process = None
        host.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join(timeout=10)

    def _shard_dir(self, host) -> Path:
        return self.directory / self.plan.shard_dir(host.shard_id)

    def _event(self, kind: str, **fields) -> dict:
        record = self.telemetry.event(kind, **fields)
        self.events.append(record)
        if self.on_event is not None:
            try:
                self.on_event(record)
            except Exception:  # noqa: BLE001 - observers must not kill the fleet
                pass
        return record

    def _write_state(self) -> None:
        try:
            write_json_atomic(
                self.directory / STATE_NAME,
                {
                    "supervisor": self.supervisor_stats(),
                    "hosts": [
                        {
                            "shard": host.shard_id,
                            "restarts": host.restarts,
                            "degraded": host.degraded,
                            "consecutive_deaths": host.consecutive_deaths,
                        }
                        for host in self.hosts
                    ],
                },
            )
        except OSError:
            pass

    def close(self) -> None:
        """Terminate and join every child; idempotent on every path."""
        for host in self.hosts:
            self._close_spool(host)
            process, conn = host.process, host.conn
            if process is None:
                continue
            try:
                if process.is_alive() and conn is not None:
                    conn.send(("close",))
                    deadline = time.monotonic() + 5.0
                    while process.is_alive() and time.monotonic() < deadline:
                        try:
                            if conn.poll(0.05):
                                conn.recv()
                                break
                        except (EOFError, OSError):
                            break
            except (BrokenPipeError, OSError):
                pass
            self._reap(host)
        self._write_state()
