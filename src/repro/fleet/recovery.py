"""Fleet-wide crash recovery, including reshard (shard-count changes).

:func:`recover_fleet` is the one entry point: given the fleet directory
and its config it reloads the persisted partition plan, rebuilds every
shard worker from its own snapshot + WAL, computes the resume clock
from the watermark protocol (:func:`~repro.fleet.coordinator
.recovered_clock`), and returns a coordinator whose continued merged
stream is bitwise identical to the uninterrupted run — no matter which
worker or the coordinator was killed, at any point.

When the requested shard count differs from the persisted plan,
:func:`reshard` re-partitions first:

1. every old-generation shard is recovered *bounded* to the fleet clock
   (``CheckpointManager.recover(..., up_to_hour=clock)``), so shards
   that had journaled an in-flight hour the fleet never acknowledged
   all land on the same state;
2. the shards' ingestor states are gathered row-wise into one global
   state (every per-sector array has the sector on axis 0; the calendar
   ring and the meta are shard-independent, taken from shard 0);
3. the new plan (generation + 1) scatters the rows into fresh shard
   ingestors, each snapshotted into its *new-generation* directory —
   old-generation files are never touched;
4. the new plan is committed by atomically replacing
   ``partition.json`` — the single commit point.  A crash anywhere
   before it leaves the old plan in force and the reshard simply
   re-runs; a crash after it finds complete new-generation checkpoints.
   Only then is the old generation pruned (best effort).

Reshard is refused for lifecycle fleets: per-shard controllers own
versioned registries and drift state bound to their sector slice, and
that state has no well-defined row-wise re-partition.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np

from repro.data.store import write_json_atomic
from repro.fleet.coordinator import (
    WATERMARK_NAME,
    FleetCoordinator,
    build_fleet,
    recovered_clock,
)
from repro.fleet.partition import PartitionPlan
from repro.fleet.worker import FleetConfig
from repro.resilience.checkpoint import CheckpointManager, TickJournal
from repro.serve.ingest import StreamIngestor

__all__ = ["journal_clock", "recover_fleet", "reshard"]


def journal_clock(directory: str | Path) -> int:
    """Durable hour count recoverable from a shard checkpoint directory.

    The newest *readable* snapshot's hour plus the contiguous run of
    journal records on top of it — exactly the ``hours_seen`` a
    :meth:`CheckpointManager.recover` of the directory would restore,
    computed without rebuilding the ingestor.  The fleet supervisor uses
    it to find where a dead shard's durable state ends, so degraded-mode
    spooling appends precisely the hours the shard is missing.
    """
    directory = Path(directory)
    clock = 0
    for path in sorted(directory.glob("snapshot-*.npz"), reverse=True):
        try:
            with np.load(path) as archive:
                archive["meta_json"]  # readability probe
            clock = int(path.stem.split("-")[1])
            break
        except Exception:  # noqa: BLE001 - skip torn/corrupt snapshots
            continue
    hours: set[int] = set()
    for segment in sorted(directory.glob("wal-*.log")):
        try:
            for hour, _values, _missing, _calendar in TickJournal.read_records(
                segment
            ):
                hours.add(hour)
        except ValueError:
            continue  # foreign or headerless file
    while clock in hours:
        clock += 1
    return clock


def recover_fleet(
    directory: str | Path,
    config: FleetConfig,
    n_shards: int | None = None,
    jobs: int = 1,
    supervise=None,
    chaos=None,
    on_event=None,
) -> FleetCoordinator:
    """Resume the fleet persisted in *directory*.

    ``n_shards`` requests a different shard count (triggering
    :func:`reshard`); ``None`` keeps the persisted plan.  ``supervise``
    / ``chaos`` / ``on_event`` select and configure the self-healing
    backend exactly as in :func:`~repro.fleet.coordinator.build_fleet`.
    """
    directory = Path(directory)
    plan = PartitionPlan.load(directory)
    target = plan.n_shards if n_shards is None else int(n_shards)
    if target != plan.n_shards:
        plan = reshard(directory, config, plan, target)
    return build_fleet(
        directory, config, plan.n_shards, jobs=jobs, resume=True, plan=plan,
        supervise=supervise, chaos=chaos, on_event=on_event,
    )


def reshard(
    directory: Path,
    config: FleetConfig,
    old_plan: PartitionPlan,
    n_shards: int,
) -> PartitionPlan:
    """Re-partition the fleet's persisted state onto *n_shards* shards."""
    if config.lifecycle is not None:
        raise ValueError(
            "cannot reshard a lifecycle fleet: per-shard controllers hold "
            "versioned registries and drift state that have no row-wise "
            "re-partition; retire the fleet cleanly and retrain instead"
        )
    ingestors = _recover_old_shards(directory, old_plan)
    clock = recovered_clock(directory, [i.hours_seen for i in ingestors])
    for shard, ingestor in enumerate(ingestors):
        if ingestor.hours_seen != clock:
            bounded = CheckpointManager.recover(
                directory / old_plan.shard_dir(shard), up_to_hour=clock
            )
            if bounded.ingestor is None or bounded.ingestor.hours_seen != clock:
                raise RuntimeError(
                    f"shard {shard} cannot be recovered to fleet clock {clock} "
                    f"(journal covers "
                    f"{0 if bounded.ingestor is None else bounded.ingestor.hours_seen} "
                    "hours)"
                )
            ingestors[shard] = bounded.ingestor
    meta, global_arrays = _gather(old_plan, ingestors)
    new_plan = PartitionPlan.compute(
        old_plan.n_sectors, n_shards, generation=old_plan.generation + 1
    )
    for shard in range(new_plan.n_shards):
        ids = new_plan.sectors_of(shard)
        arrays = {
            key: (array.copy() if key == "calendar" else array[ids])
            for key, array in global_arrays.items()
        }
        ingestor = StreamIngestor.from_state({"meta": meta, "arrays": arrays})
        shard_dir = directory / new_plan.shard_dir(shard)
        if shard_dir.exists():
            # Leftovers of a reshard that crashed before its commit
            # point; the whole generation is rebuilt from scratch.
            shutil.rmtree(shard_dir)
        manager = CheckpointManager.for_ingestor(
            shard_dir, ingestor, snapshot_every=config.snapshot_every
        )
        try:
            manager.snapshot(ingestor)
        finally:
            manager.close()
    write_json_atomic(directory / WATERMARK_NAME, {"emitted_hours": clock})
    new_plan.save(directory)  # commit point: recovery now sees the new generation
    for shard in range(old_plan.n_shards):
        shutil.rmtree(
            directory / old_plan.shard_dir(shard), ignore_errors=True
        )
    return new_plan


def _recover_old_shards(
    directory: Path, plan: PartitionPlan
) -> list[StreamIngestor]:
    ingestors: list[StreamIngestor] = []
    for shard in range(plan.n_shards):
        recovered = CheckpointManager.recover(directory / plan.shard_dir(shard))
        if recovered.ingestor is None:
            raise FileNotFoundError(
                f"no checkpoint state for shard {shard} under "
                f"{directory / plan.shard_dir(shard)}"
            )
        ingestors.append(recovered.ingestor)
    return ingestors


def _gather(
    plan: PartitionPlan, ingestors: list[StreamIngestor]
) -> tuple[dict, dict]:
    """Assemble the shards' ingestor states into one global state dict.

    Every state array is per-sector on axis 0 except the shared
    ``calendar`` ring; the meta block (clock, capacity, anchors, score
    config) is identical across shards once they are recovered to the
    same hour.  Both are taken from shard 0 and the per-sector rows are
    scattered by each shard's sector ids.
    """
    states = [ingestor.state_dict() for ingestor in ingestors]
    meta = states[0]["meta"]
    global_arrays: dict[str, np.ndarray] = {}
    for key, array in states[0]["arrays"].items():
        if key == "calendar":
            global_arrays[key] = array.copy()
        else:
            global_arrays[key] = np.empty(
                (plan.n_sectors,) + array.shape[1:], dtype=array.dtype
            )
    for shard, state in enumerate(states):
        ids = plan.sectors_of(shard)
        for key, array in state["arrays"].items():
            if key != "calendar":
                global_arrays[key][ids] = array
    return meta, global_arrays
