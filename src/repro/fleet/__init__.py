"""repro.fleet — shard-capable serving: partition, route, merge, recover.

The single-engine serve path (:mod:`repro.serve`, hardened by
:mod:`repro.resilience`) scales up here without giving up any of its
guarantees:

* :mod:`repro.fleet.partition` — deterministic sector → shard
  assignment, persisted with the checkpoints, diffable into rebalance
  plans;
* :mod:`repro.fleet.worker` — one shard's engine + WAL + dark tracker
  (+ optional lifecycle controller), crash-consistent per tick;
* :mod:`repro.fleet.coordinator` — global validation, tick routing,
  and the deterministic merge that makes the fleet's event stream
  bitwise identical to a single engine's, on either the in-process or
  the forked-process backend;
* :mod:`repro.fleet.recovery` — fleet-wide crash recovery and
  reshard (shard-count changes between runs), resuming to a
  bitwise-identical continuation of the merged stream;
* :mod:`repro.fleet.supervisor` — the self-healing backend: per-shard
  heartbeats, live restart-with-recovery, poison-block quarantine, and
  degraded-shard serving through the fallback ladder.
"""

from repro.fleet.coordinator import (
    WATERMARK_NAME,
    FleetCoordinator,
    ProcessBackend,
    SerialBackend,
    build_fleet,
    recovered_clock,
)
from repro.fleet.partition import (
    PARTITION_NAME,
    PartitionPlan,
    rebalance_moves,
    sector_shard,
)
from repro.fleet.recovery import journal_clock, recover_fleet, reshard
from repro.fleet.supervisor import FleetSupervisor, SupervisorConfig
from repro.fleet.worker import (
    FleetConfig,
    FleetLifecycleSpec,
    FleetProtocolError,
    ShardWorker,
    SimulatedKill,
    build_worker,
)

__all__ = [
    "FleetConfig",
    "FleetCoordinator",
    "FleetLifecycleSpec",
    "FleetProtocolError",
    "FleetSupervisor",
    "PARTITION_NAME",
    "PartitionPlan",
    "ProcessBackend",
    "SerialBackend",
    "ShardWorker",
    "SimulatedKill",
    "SupervisorConfig",
    "WATERMARK_NAME",
    "build_fleet",
    "build_worker",
    "journal_clock",
    "rebalance_moves",
    "recover_fleet",
    "recovered_clock",
    "reshard",
    "sector_shard",
]
