"""Fleet coordinator: route ticks to shards, merge one event stream.

:class:`FleetCoordinator` is the fleet's single front door.  It owns the
*global* halves of the resilience pipeline — tick validation against the
full network shape, the dead-letter queue, gap synthesis, and dark-alert
masking — and drives every shard worker with the rows it owns, then
merges the shards' response fragments back into one deterministic event
stream.

The merged stream is, by construction, bitwise identical (as JSON
lines) to what a single-engine
:class:`~repro.resilience.guard.ResilientHotSpotService` over the whole
network emits, for any shard count and either backend.  The merge rules
that guarantee it (DESIGN.md 3f):

* ``sector_dark`` events sort by global sector id (each shard reports
  its newly-dark sectors in ascending local order, which is ascending
  global order within the shard; the merge interleaves shards);
* the ``day`` event's ``hot_sectors`` is the ascending union of the
  shards' local hot sets;
* alerts are assembled from *full local score vectors*: the coordinator
  scatters each shard's fragment into a global score array and applies
  the exact single-engine policy — stable argsort, top-k, optional
  threshold, then global dark masking — because per-shard top-k would
  not commute with the global ranking;
* lifecycle events append in ascending shard-id order.

Watermark protocol: a tick is acknowledged (its events returned / its
``watermark.json`` advanced) only after every shard has applied *and
journaled* it.  A crash anywhere leaves either no shard or every shard
at-or-past the watermark, which is what
:func:`repro.fleet.recovery.recover_fleet` relies on to resume to a
bitwise-identical continuation.

Two backends drive the shards: :class:`SerialBackend` runs the workers
in-process (the fallback and the kill-point test harness);
:class:`ProcessBackend` forks worker hosts over pipes, broadcasting each
tick through writable shared memory
(:class:`~repro.parallel.shm.SharedArrayBundle`), reusing the
:mod:`repro.parallel` machinery and degrading to serial exactly like
the sweep does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

import numpy as np

from repro.data.store import write_json_atomic
from repro.data.tensor import HOURS_PER_DAY
from repro.fleet.partition import PartitionPlan
from repro.fleet.worker import (
    FleetConfig,
    ShardWorker,
    SimulatedKill,
    build_worker,
)
from repro.parallel.pool import PoolUnavailable, effective_jobs, partition
from repro.parallel.shm import (
    SharedArrayBundle,
    SharedMemoryUnavailable,
    shared_memory_available,
)
from repro.resilience.validate import (
    ACCEPT,
    QUARANTINE,
    RECONCILE,
    DeadLetterQueue,
    TickValidator,
)
from repro.serve.ingest import default_calendar_row
from repro.serve.telemetry import ServeTelemetry

__all__ = [
    "WATERMARK_NAME",
    "FleetCoordinator",
    "ProcessBackend",
    "SerialBackend",
    "build_fleet",
    "recovered_clock",
]

#: Fleet-level acknowledge file: the number of hours whose events have
#: been merged and released to the caller.
WATERMARK_NAME = "watermark.json"


# --------------------------------------------------------------------------
# backends
# --------------------------------------------------------------------------
class SerialBackend:
    """All shard workers in the coordinator's process.

    The reference backend: trivially deterministic, no IPC, and the only
    one the kill-point suite uses (workers stay reachable so tests can
    arm :attr:`ShardWorker.kill_at` directly).
    """

    name = "serial"

    #: No broadcast buffer to size: blocks pass whole (None = unlimited).
    block_capacity: int | None = None

    def __init__(self, workers: list[ShardWorker]) -> None:
        self.workers = workers

    @classmethod
    def build(
        cls,
        directory: Path,
        plan: PartitionPlan,
        config: FleetConfig,
        resume: bool,
    ) -> "SerialBackend":
        return cls(
            [
                build_worker(directory, plan, shard, config, resume=resume)
                for shard in range(plan.n_shards)
            ]
        )

    def submit_hour(self, hour, values, missing, calendar_row) -> list[dict]:
        return [
            worker.submit(
                hour,
                values[worker.sector_ids, :],
                missing[worker.sector_ids, :],
                calendar_row,
            )
            for worker in self.workers
        ]

    def submit_block(
        self, first_hour, values, missing, calendar_rows, released_before=None
    ) -> list[list[dict]]:
        return [
            worker.submit_block(
                first_hour,
                values[worker.sector_ids, :, :],
                missing[worker.sector_ids, :, :],
                calendar_rows,
                released_before=released_before,
            )
            for worker in self.workers
        ]

    def ring(self, hour: int) -> list:
        return [worker.ring_payload(hour) for worker in self.workers]

    def predict(self, horizon, model=None, window=None) -> list[np.ndarray]:
        return [
            worker.predict_fragment(horizon, model=model, window=window)
            for worker in self.workers
        ]

    def shard_hours(self) -> list[int]:
        return [worker.ingestor.hours_seen for worker in self.workers]

    def stats(self) -> list[dict]:
        return [worker.stats() for worker in self.workers]

    def telemetries(self) -> list[ServeTelemetry]:
        return [worker.engine.telemetry for worker in self.workers]

    def close(self) -> None:
        for worker in self.workers:
            worker.close()


def _host_main(conn, specs, directory, plan, config, shard_ids, resume) -> None:
    """Process-backend child: host a contiguous group of shard workers.

    Ticks arrive by reference — the parent broadcasts each hour's global
    payload through shared memory and sends only the hour number down
    the pipe; the child slices its shards' rows out of the mapping.
    """
    bundle = None
    workers: list[ShardWorker] = []
    try:
        bundle = SharedArrayBundle.attach(specs)
        workers = [
            build_worker(directory, plan, shard, config, resume=resume)
            for shard in shard_ids
        ]
        conn.send(("hello", [w.ingestor.hours_seen for w in workers]))
    except Exception as error:  # noqa: BLE001 - report, then die
        try:
            conn.send(("fatal", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
        return
    values = bundle["values"]
    missing = bundle["missing"]
    calendar = bundle["calendar"]
    flags = bundle["flags"]
    try:
        while True:
            try:
                request = conn.recv()
            except EOFError:
                break
            op = request[0]
            try:
                if op == "tick":
                    hour = request[1]
                    row = calendar[0].copy() if flags[0] else None
                    payload = [
                        w.submit(
                            hour,
                            values[w.sector_ids, 0, :],
                            missing[w.sector_ids, 0, :],
                            row,
                        )
                        for w in workers
                    ]
                elif op == "tick_block":
                    _, first_hour, n_hours, released_before = request
                    rows = calendar[:n_hours].copy() if flags[0] else None
                    payload = [
                        w.submit_block(
                            first_hour,
                            values[w.sector_ids, :n_hours, :],
                            missing[w.sector_ids, :n_hours, :],
                            rows,
                            released_before=released_before,
                        )
                        for w in workers
                    ]
                elif op == "ring":
                    payload = [w.ring_payload(request[1]) for w in workers]
                elif op == "predict":
                    _, horizon, model, window = request
                    payload = [
                        w.predict_fragment(horizon, model=model, window=window)
                        for w in workers
                    ]
                elif op == "stats":
                    payload = [w.stats() for w in workers]
                elif op == "telemetry":
                    payload = [w.engine.telemetry for w in workers]
                elif op == "close":
                    for w in workers:
                        w.close()
                    conn.send(("ok", None))
                    break
                else:
                    raise ValueError(f"unknown fleet op {op!r}")
                conn.send(("ok", payload))
            except Exception as error:  # noqa: BLE001 - relay to the parent
                conn.send(("err", f"{type(error).__name__}: {error}"))
    finally:
        if bundle is not None:
            bundle.destroy()  # non-owner: closes the mapping, no unlink


class ProcessBackend:
    """Shard workers fanned out over forked host processes.

    ``jobs`` hosts each own a contiguous group of shards (the same
    :func:`~repro.parallel.pool.partition` used by the sweep).  Raises
    :class:`PoolUnavailable` / :class:`SharedMemoryUnavailable` when the
    platform cannot support it, and :func:`build_fleet` degrades to
    :class:`SerialBackend` — same merged stream either way.
    """

    name = "process"

    #: Hours per shared-memory broadcast; larger blocks are split by the
    #: coordinator.  One day keeps the mapping small while amortising
    #: the pipe round-trip 24× over per-hour driving.
    block_capacity: int = HOURS_PER_DAY

    def __init__(
        self,
        directory: Path,
        plan: PartitionPlan,
        config: FleetConfig,
        resume: bool,
        jobs: int,
    ) -> None:
        import multiprocessing

        if not shared_memory_available():
            raise SharedMemoryUnavailable("no shared memory on this host")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as error:
            raise PoolUnavailable(f"fork start method unavailable: {error}") from error
        groups = partition(list(range(plan.n_shards)), jobs)
        if len(groups) < 2:
            raise PoolUnavailable("process backend needs >= 2 worker groups")
        # Broadcast buffers hold up to ``block_capacity`` hours; a
        # single tick uses column 0, micro-batches fill a prefix and
        # ship only (first_hour, n_hours) down the pipe.
        self._bundle = SharedArrayBundle.create(
            {
                "values": np.zeros(
                    (config.n_sectors, self.block_capacity, config.n_kpis)
                ),
                "missing": np.zeros(
                    (config.n_sectors, self.block_capacity, config.n_kpis),
                    dtype=bool,
                ),
                "calendar": np.zeros((self.block_capacity, 5)),
                "flags": np.zeros(1),
            },
            writable=True,
        )
        self._children: list = []
        self._hours: list[int] = []
        try:
            for group in groups:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_host_main,
                    args=(
                        child_conn,
                        self._bundle.specs(),
                        str(directory),
                        plan,
                        config,
                        group,
                        resume,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._children.append((process, parent_conn, group))
            for process, conn, group in self._children:
                kind, payload = self._recv(process, conn)
                if kind != "hello":
                    raise RuntimeError(
                        f"shard host for {group} failed to start: {payload}"
                    )
                self._hours.extend(payload)
        except PoolUnavailable:
            self.close()
            raise
        except (OSError, RuntimeError) as error:
            self.close()
            raise PoolUnavailable(f"cannot start shard hosts: {error}") from error

    @staticmethod
    def _recv(process, conn):
        while not conn.poll(0.2):
            if not process.is_alive():
                raise RuntimeError(
                    f"shard host pid {process.pid} died (exit {process.exitcode})"
                )
        return conn.recv()

    def _roundtrip(self, request) -> list:
        for _, conn, _ in self._children:
            conn.send(request)
        payload: list = []
        for process, conn, _ in self._children:
            kind, part = self._recv(process, conn)
            if kind == "err":
                raise RuntimeError(f"shard host failed: {part}")
            payload.extend(part if isinstance(part, list) else [part])
        return payload

    def submit_hour(self, hour, values, missing, calendar_row) -> list[dict]:
        self._bundle["values"][:, 0, :] = values
        self._bundle["missing"][:, 0, :] = missing
        if calendar_row is None:
            self._bundle["flags"][0] = 0.0
        else:
            self._bundle["flags"][0] = 1.0
            self._bundle["calendar"][0, :] = calendar_row
        return self._roundtrip(("tick", int(hour)))

    def submit_block(
        self, first_hour, values, missing, calendar_rows, released_before=None
    ) -> list[list[dict]]:
        n_hours = int(values.shape[1])
        if n_hours > self.block_capacity:
            raise ValueError(
                f"block of {n_hours} hours exceeds the broadcast capacity "
                f"{self.block_capacity}"
            )
        self._bundle["values"][:, :n_hours, :] = values
        self._bundle["missing"][:, :n_hours, :] = missing
        if calendar_rows is None:
            self._bundle["flags"][0] = 0.0
        else:
            self._bundle["flags"][0] = 1.0
            self._bundle["calendar"][:n_hours, :] = calendar_rows
        return self._roundtrip(
            (
                "tick_block",
                int(first_hour),
                n_hours,
                None if released_before is None else int(released_before),
            )
        )

    def ring(self, hour: int) -> list:
        return self._roundtrip(("ring", int(hour)))

    def predict(self, horizon, model=None, window=None) -> list[np.ndarray]:
        return self._roundtrip(("predict", int(horizon), model, window))

    def shard_hours(self) -> list[int]:
        return list(self._hours)

    def stats(self) -> list[dict]:
        return self._roundtrip(("stats",))

    def telemetries(self) -> list[ServeTelemetry]:
        return self._roundtrip(("telemetry",))

    def close(self) -> None:
        children, self._children = self._children, []
        try:
            for process, conn, _ in children:
                try:
                    if process.is_alive():
                        conn.send(("close",))
                        self._recv(process, conn)
                except (OSError, RuntimeError, EOFError):
                    pass
                finally:
                    conn.close()
                    process.join(timeout=5)
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=5)
                    if process.is_alive():
                        # terminate() can be swallowed by a SIGTERM-masked
                        # child; SIGKILL cannot.
                        process.kill()
                        process.join()
        finally:
            bundle, self._bundle = self._bundle, None
            if bundle is not None:
                bundle.destroy()


# --------------------------------------------------------------------------
# coordinator
# --------------------------------------------------------------------------
class FleetCoordinator:
    """Global validation, shard routing, and deterministic event merge."""

    def __init__(
        self,
        directory: str | Path,
        plan: PartitionPlan,
        config: FleetConfig,
        backend,
        clock: int = 0,
        validator: TickValidator | None = None,
        dead_letters: DeadLetterQueue | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.plan = plan
        self.config = config
        self.backend = backend
        self.clock = int(clock)
        self.validator = validator or TickValidator(
            n_sectors=config.n_sectors, n_kpis=config.n_kpis
        )
        self.dead_letters = dead_letters or DeadLetterQueue()
        self.telemetry = ServeTelemetry()
        #: ``("mid_merge", hour)`` → raise :class:`SimulatedKill` after
        #: the shards applied the hour but before the merge/acknowledge.
        self.kill_at: tuple | None = None
        #: Optional per-hour event tap: ``tap(hour, events)`` fires with
        #: each hour's merged (gap-prefixed) event list after the shards
        #: applied and journaled it but **before** the fleet watermark
        #: advances.  A crash between shard journaling and the tap
        #: leaves the watermark behind, so resume re-drives the hour
        #: and the shards re-emit their persisted responses — the tap
        #: sees an identical list and must be idempotent per hour.  The
        #: gateway points this at its durable event journal for SSE
        #: delivery (DESIGN.md 3j).
        self.event_tap = None

    # -------------------------------------------------------------- ticks
    @property
    def t_day(self) -> int:
        """Last fully merged day (-1 before the first completes)."""
        return self.clock // HOURS_PER_DAY - 1

    def submit_tick(
        self,
        values,
        missing=None,
        calendar_row=None,
        hour: int | None = None,
    ) -> list[dict]:
        """Validate, route, merge, acknowledge one tick.

        The exact control flow of
        :meth:`ResilientHotSpotService.submit_tick`, with the per-row
        work delegated to the shards: quarantine and duplicate verdicts
        are handled entirely here; accepted ticks (gap fills included)
        are broadcast to every shard, and the merged events are released
        only after every shard journaled the hour (then the fleet
        watermark advances).
        """
        verdict = self.validator.validate(
            values,
            missing,
            calendar_row,
            hour=hour,
            clock=self.clock,
            ring_payload=self._ring_payload,
        )
        if verdict.action == QUARANTINE:
            self.telemetry.inc("ticks_quarantined")
            record = self.dead_letters.push(
                verdict.reason, hour=verdict.declared_hour, detail=verdict.detail
            )
            return [self.telemetry.event("quarantine", **record)]
        if verdict.action == RECONCILE:
            self.telemetry.inc("ticks_reconciled")
            return [
                self.telemetry.event(
                    "duplicate", hour=verdict.declared_hour, detail=verdict.detail
                )
            ]
        assert verdict.action == ACCEPT
        events: list[dict] = []
        for _ in range(verdict.gap_hours):
            hour_now = self.clock
            gap_values = np.full((self.config.n_sectors, self.config.n_kpis), np.nan)
            gap_missing = np.ones_like(gap_values, dtype=bool)
            self.telemetry.inc("ticks_gap_filled")
            events.extend(
                self._drive_hour(
                    hour_now,
                    gap_values,
                    gap_missing,
                    self._default_calendar(hour_now),
                    prefix=[self.telemetry.event("gap_fill", hour=hour_now)],
                )
            )
        events.extend(
            self._drive_hour(
                self.clock, verdict.values, verdict.missing, verdict.calendar_row
            )
        )
        write_json_atomic(
            self.directory / WATERMARK_NAME, {"emitted_hours": self.clock}
        )
        return events

    def submit_block(
        self,
        values,
        missing=None,
        calendar_rows=None,
        first_hour: int | None = None,
    ) -> list[dict]:
        """Validate, broadcast, and merge a micro-batch of hours.

        Fleet twin of :meth:`ResilientHotSpotService.submit_block`:
        every column is probe-validated against the clock it would meet
        in per-hour order; a block of plain accepts is broadcast to the
        shards in ``block_capacity`` slices (each shard applies and
        journals it in day chunks) and the per-hour fragments are merged
        in order, producing the identical event stream.  Any quarantine,
        duplicate, or gap verdict discards the probe and replays the
        original columns through per-hour :meth:`submit_tick`.  The
        watermark advances once, after the whole block is merged — a
        mid-block crash re-drives from the last acknowledged hour and
        shards re-emit what they already journaled.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 3:
            raise ValueError(
                f"values must be (n_sectors, n_hours, n_kpis), got {values.shape}"
            )
        if missing is not None:
            missing = np.asarray(missing, dtype=bool)
        if calendar_rows is not None:
            calendar_rows = np.asarray(calendar_rows, dtype=np.float64)
        n_hours = values.shape[1]
        if n_hours == 0:
            return []
        verdicts = []
        for j in range(n_hours):
            verdict = self.validator.validate(
                values[:, j, :],
                None if missing is None else missing[:, j, :],
                None if calendar_rows is None else calendar_rows[j],
                hour=None if first_hour is None else first_hour + j,
                clock=self.clock + j,
                ring_payload=self._ring_payload,
            )
            if verdict.action != ACCEPT or verdict.gap_hours != 0:
                break
            verdicts.append(verdict)
        if len(verdicts) < n_hours:
            events: list[dict] = []
            for j in range(n_hours):
                events.extend(
                    self.submit_tick(
                        values[:, j, :],
                        None if missing is None else missing[:, j, :],
                        None if calendar_rows is None else calendar_rows[j],
                        hour=None if first_hour is None else first_hour + j,
                    )
                )
            return events
        block_values = np.stack([v.values for v in verdicts], axis=1)
        block_missing = np.stack([v.missing for v in verdicts], axis=1)
        calendar_block = (
            None
            if calendar_rows is None
            else np.stack([v.calendar_row for v in verdicts])
        )
        events = []
        capacity = self.backend.block_capacity or n_hours
        # The acknowledged boundary for this whole block: shards keep
        # every non-trivial response from here on so a mid-block crash
        # re-emits faithfully across capacity slices and day chunks.
        released = self.clock
        start = 0
        while start < n_hours:
            stop = min(start + capacity, n_hours)
            hour0 = self.clock
            responses = self.backend.submit_block(
                hour0,
                block_values[:, start:stop, :],
                block_missing[:, start:stop, :],
                None if calendar_block is None else calendar_block[start:stop],
                released_before=released,
            )
            if (
                self.kill_at is not None
                and self.kill_at[0] == "mid_merge"
                and hour0 <= self.kill_at[1] < hour0 + (stop - start)
            ):
                self.kill_at = None
                raise SimulatedKill(
                    f"simulated crash: coordinator at mid_merge of block "
                    f"[{hour0}, {hour0 + stop - start})"
                )
            self.clock = hour0 + (stop - start)
            for j in range(stop - start):
                hour_events = self._merge(hour0 + j, [shard[j] for shard in responses])
                if self.event_tap is not None:
                    self.event_tap(hour0 + j, hour_events)
                events.extend(hour_events)
            start = stop
        write_json_atomic(
            self.directory / WATERMARK_NAME, {"emitted_hours": self.clock}
        )
        return events

    def _drive_hour(
        self, hour, values, missing, calendar_row, prefix: list[dict] | None = None
    ) -> list[dict]:
        """Broadcast one accepted hour to the shards and merge fragments."""
        responses = self.backend.submit_hour(hour, values, missing, calendar_row)
        if self.kill_at == ("mid_merge", hour):
            self.kill_at = None
            raise SimulatedKill(
                f"simulated crash: coordinator at mid_merge of hour {hour}"
            )
        self.clock = hour + 1
        events = (prefix or []) + self._merge(hour, responses)
        if self.event_tap is not None:
            self.event_tap(hour, events)
        return events

    def _merge(self, hour: int, responses: list[dict]) -> list[dict]:
        events: list[dict] = []
        # Supervision transitions (shard_degraded / shard_recovered /
        # poison_block) ride on the response that triggered them and are
        # released first; healthy runs carry none, so stream parity with
        # the single engine is untouched.
        for response in responses:
            events.extend(response.get("supervisor", ()))
        newly_dark = sorted(
            (int(sector), int(run))
            for response in responses
            for sector, run in response["dark_new"]
        )
        for sector, run in newly_dark:
            events.append(
                self.telemetry.event(
                    "sector_dark", sector=sector, hour=hour, missing_run=run
                )
            )
        if not responses[0]["day_completed"]:
            return events
        t_day = int(responses[0]["t_day"])
        hot = sorted(
            int(sector) for response in responses for sector in response["hot"]
        )
        events.append({"type": "day", "t_day": t_day, "hot_sectors": hot})
        if t_day >= self.config.start_day:
            dark_mask = self._assemble_mask(responses)
            for horizon in self.config.horizons:
                scores = self._assemble_scores(responses, horizon)
                if scores is None:
                    continue
                alert = self._build_alert(t_day, int(horizon), scores)
                if alert is None:
                    continue
                self.telemetry.inc("alerts_emitted")
                events.append(self._mask_alert(alert, dark_mask))
        for response in responses:
            events.extend(response["lifecycle"])
        return events

    def _assemble_scores(self, responses, horizon) -> np.ndarray | None:
        key = str(int(horizon))
        scores = np.empty(self.config.n_sectors, dtype=np.float64)
        for shard, response in enumerate(responses):
            fragment = response["scores"].get(key)
            if fragment is None:
                return None
            scores[self.plan.sectors_of(shard)] = np.asarray(
                fragment, dtype=np.float64
            )
        return scores

    def _assemble_mask(self, responses) -> np.ndarray:
        mask = np.zeros(self.config.n_sectors, dtype=bool)
        for shard, response in enumerate(responses):
            local = response["dark_mask"]
            if local:
                mask[self.plan.sectors_of(shard)] = np.asarray(local, dtype=bool)
        return mask

    def _build_alert(self, t_day, horizon, scores) -> dict | None:
        order = np.argsort(-scores, kind="stable")[: self.config.top_k]
        if self.config.alert_threshold is not None:
            order = order[scores[order] >= self.config.alert_threshold]
        if order.size == 0:
            return None
        return {
            "type": "alert",
            "t_day": t_day,
            "horizon": horizon,
            "forecast_day": t_day + horizon,
            "model": self.config.model,
            "sectors": [int(i) for i in order],
            "scores": [float(scores[i]) for i in order],
        }

    def _mask_alert(self, alert: dict, dark_mask: np.ndarray) -> dict:
        if not dark_mask.any():
            return alert
        keep = [i for i, s in enumerate(alert["sectors"]) if not dark_mask[s]]
        removed = len(alert["sectors"]) - len(keep)
        if removed:
            self.telemetry.inc("alert_sectors_suppressed_dark", removed)
        if not keep:
            return self.telemetry.event(
                "alert_suppressed",
                t_day=alert["t_day"],
                horizon=alert["horizon"],
                reason="all alerted sectors are dark",
            )
        if removed:
            alert = {
                **alert,
                "sectors": [alert["sectors"][i] for i in keep],
                "scores": [alert["scores"][i] for i in keep],
            }
        return alert

    def _ring_payload(self, hour: int):
        payloads = self.backend.ring(hour)
        if any(payload is None for payload in payloads):
            return None
        values = np.empty((self.config.n_sectors, self.config.n_kpis))
        missing = np.empty((self.config.n_sectors, self.config.n_kpis), dtype=bool)
        for shard, (shard_values, shard_missing) in enumerate(payloads):
            ids = self.plan.sectors_of(shard)
            values[ids, :] = shard_values
            missing[ids, :] = shard_missing
        return values, missing

    def _default_calendar(self, hour: int) -> np.ndarray:
        return default_calendar_row(
            hour,
            start_weekday=self.config.start_weekday,
            start_hour=self.config.start_hour,
            start_day_of_month=self.config.start_day_of_month,
        )

    # ------------------------------------------------------------ serving
    def predict(self, horizon: int, model=None, window=None) -> np.ndarray:
        fragments = self.backend.predict(horizon, model=model, window=window)
        scores = np.empty(self.config.n_sectors, dtype=np.float64)
        for shard, fragment in enumerate(fragments):
            scores[self.plan.sectors_of(shard)] = fragment
        return scores

    def run_jsonl(self, lines: Iterable[str], out: IO[str]) -> int:
        """JSONL driver, same protocol as the single-engine service.

        ``tick`` goes through :meth:`submit_tick`; ``predict`` and
        ``stats`` answer from the merged fleet; error handling matches
        :meth:`HotSpotService.run_jsonl` (bad lines emit structured
        error events, only sink :class:`OSError` propagates).
        """
        processed = 0
        for line_no, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            processed += 1
            try:
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    self._emit_error(out, line_no, None, "malformed_json", error)
                    continue
                if not isinstance(request, dict):
                    self._emit_error(
                        out, line_no, None, "not_an_object",
                        TypeError(
                            f"expected a JSON object, got {type(request).__name__}"
                        ),
                    )
                    continue
                op = request.get("op")
                if op == "stop":
                    self._emit(out, {"type": "stopped", "processed": processed})
                    break
                if op == "tick" or op == "predict" or op == "stats":
                    self._handle(out, request, op)
                else:
                    self._emit_error(
                        out, line_no, op, "unknown_op",
                        ValueError(f"unknown op {op!r}"),
                    )
            except OSError:
                raise
            except Exception as error:  # noqa: BLE001 - fleet must survive bad input
                op = request.get("op") if isinstance(request, dict) else None
                self._emit_error(out, line_no, op, "operation_failed", error)
        return processed

    def _handle(self, out: IO[str], request: dict, op: str) -> None:
        if op == "tick":
            values = np.asarray(request["values"], dtype=np.float64)
            missing = request.get("missing")
            if missing is not None:
                missing = np.asarray(missing, dtype=bool)
            calendar = request.get("calendar")
            if calendar is not None:
                calendar = np.asarray(calendar, dtype=np.float64)
            hour = request.get("hour")
            if hour is not None:
                hour = int(hour)
            for event in self.submit_tick(values, missing, calendar, hour=hour):
                self._emit(out, event)
        elif op == "predict":
            scores = self.predict(
                int(request["horizon"]),
                model=request.get("model"),
                window=request.get("window"),
            )
            self._emit(
                out,
                {
                    "type": "prediction",
                    "t_day": self.t_day,
                    "horizon": int(request["horizon"]),
                    "scores": [float(s) for s in scores],
                },
            )
        elif op == "stats":
            self._emit(out, {"type": "stats", **self.stats()})

    def _emit_error(self, out, line_no, op, reason, error) -> None:
        self.telemetry.inc("stream_errors")
        self._emit(
            out,
            {
                "event": "error",
                "type": "error",
                "line": line_no,
                "op": op,
                "reason": reason,
                "error": type(error).__name__,
                "message": str(error),
            },
        )

    @staticmethod
    def _emit(out: IO[str], event: dict) -> None:
        out.write(json.dumps(event) + "\n")
        out.flush()

    # -------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Merged fleet snapshot: pooled telemetry + per-shard counters."""
        shard_stats = self.backend.stats()
        merged = self.telemetry.merge(self.backend.telemetries())
        snapshot = merged.stats()
        snapshot["fleet"] = {
            "n_shards": self.plan.n_shards,
            "generation": self.plan.generation,
            "clock": self.clock,
            "backend": self.backend.name,
            "per_shard": [s.get("shard", {}) for s in shard_stats],
        }
        snapshot["resilience"] = {"dead_letters": self.dead_letters.stats()}
        if hasattr(self.backend, "supervisor_stats"):
            snapshot["fleet"]["supervisor"] = self.backend.supervisor_stats()
        return snapshot

    def close(self) -> None:
        """Shut the backend down (terminate/join forked workers); idempotent."""
        backend, self.backend = self.backend, None
        if backend is not None:
            backend.close()

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------------
# factory
# --------------------------------------------------------------------------
def build_fleet(
    directory: str | Path,
    config: FleetConfig,
    n_shards: int,
    jobs: int = 1,
    resume: bool = False,
    plan: PartitionPlan | None = None,
    clock: int | None = None,
    supervise=None,
    chaos=None,
    on_event=None,
) -> FleetCoordinator:
    """Construct a fresh fleet (use :func:`~repro.fleet.recovery
    .recover_fleet` to resume one — it computes the plan and clock).

    ``supervise`` (a :class:`~repro.fleet.supervisor.SupervisorConfig`)
    selects the self-healing one-process-per-shard backend; ``chaos``
    (a :class:`~repro.resilience.chaos.ProcessChaos`) arms its
    deterministic process-fault schedule and ``on_event`` observes
    out-of-stream supervision events.  Otherwise ``jobs`` > 1 asks for
    the process backend.  Either way unavailability degrades to the
    serial backend with the identical merged stream.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if plan is None:
        if resume:
            plan = PartitionPlan.load(directory)
        else:
            plan = PartitionPlan.compute(config.n_sectors, n_shards)
            plan.save(directory)
    backend = None
    if supervise is not None:
        from repro.fleet.supervisor import FleetSupervisor

        try:
            backend = FleetSupervisor(
                directory, plan, config, resume,
                supervise=supervise, chaos=chaos, on_event=on_event,
            )
        except PoolUnavailable:
            backend = None
    elif effective_jobs(jobs, plan.n_shards) > 1:
        try:
            backend = ProcessBackend(
                directory, plan, config, resume, effective_jobs(jobs, plan.n_shards)
            )
        except (PoolUnavailable, SharedMemoryUnavailable):
            backend = None
    if backend is None:
        backend = SerialBackend.build(directory, plan, config, resume)
    if clock is None:
        clock = recovered_clock(directory, backend.shard_hours()) if resume else 0
    coordinator = FleetCoordinator(
        directory, plan, config, backend, clock=clock
    )
    if hasattr(backend, "bind"):
        backend.bind(coordinator)
    return coordinator


def recovered_clock(directory: str | Path, shard_hours: list[int]) -> int:
    """The resume clock implied by the watermark and the shard WALs.

    ``m = min(shard hours)`` bounds how far every shard verifiably got;
    the watermark ``w`` records the last acknowledged hour + 1.  The
    fleet resumes from ``w``: everything before it was released to the
    consumer, everything in ``[w, m)`` was journaled by (some or all)
    shards but never acknowledged — a per-hour crash leaves that window
    at most one hour wide, a mid-block crash up to a block wide — and
    re-driving it makes shards re-emit their persisted responses
    (at-most-once with respect to the watermark, exactly once with
    respect to the WALs).  ``w`` can never validly exceed ``m``;
    clamping guards against a hand-edited watermark.
    """
    m = min(shard_hours)
    path = Path(directory) / WATERMARK_NAME
    watermark = 0
    if path.exists():
        watermark = int(
            json.loads(path.read_text(encoding="utf-8"))["emitted_hours"]
        )
    return max(0, min(watermark, m))
