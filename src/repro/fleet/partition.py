"""Deterministic sector → shard assignment for the serving fleet.

The fleet's partitioning contract (DESIGN.md 3f) has three parts:

* **stable hashing** — a sector's home shard is a pure function of the
  sector id and the shard count (:func:`sector_shard`, CRC32 of a
  canonical token), so two processes computing the assignment always
  agree without coordination;
* **explicit persistence** — the computed assignment is materialised as
  a :class:`PartitionPlan` and persisted next to the shard checkpoints
  (``partition.json``), so recovery routes every journaled tick to the
  shard that owns its rows even if the hash function ever changes;
* **rebalance planning** — when the shard count changes between runs,
  :func:`rebalance_moves` diffs the old and new plans into the exact
  per-sector moves the reshard recovery has to perform.

Assignments are near-balanced by the hash; shards that come out empty
(possible at tiny sector counts) are repaired deterministically by
moving the highest-index sector off the currently largest shard, so a
plan never contains a shard with nothing to do.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.store import write_json_atomic

__all__ = ["PARTITION_NAME", "PartitionPlan", "rebalance_moves", "sector_shard"]

#: File the active plan is persisted to inside the fleet directory.
PARTITION_NAME = "partition.json"


def sector_shard(sector: int, n_shards: int) -> int:
    """Stable home shard for *sector* under *n_shards* shards.

    CRC32 of a canonical ``sector:<id>`` token, reduced modulo the shard
    count — platform- and process-independent, like the sweep's cell
    seeds (DESIGN.md section on derived randomness).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(f"sector:{int(sector)}".encode("ascii")) % n_shards


@dataclass(frozen=True)
class PartitionPlan:
    """A persisted sector → shard assignment table.

    Attributes
    ----------
    n_sectors, n_shards:
        Global shape of the fleet.
    generation:
        Monotone reshard counter.  Each reshard bumps it, and shard
        checkpoint directories are namespaced by it
        (:meth:`shard_dir`), so a crashed reshard can never mix old- and
        new-generation WAL segments.
    assignment:
        ``(n_sectors,)`` int64 array; ``assignment[s]`` is the shard
        owning sector ``s``.
    """

    n_sectors: int
    n_shards: int
    generation: int
    assignment: np.ndarray

    # ------------------------------------------------------------ compute
    @classmethod
    def compute(
        cls, n_sectors: int, n_shards: int, generation: int = 0
    ) -> "PartitionPlan":
        """The deterministic plan for *n_sectors* over *n_shards*."""
        if n_sectors < 1:
            raise ValueError(f"n_sectors must be >= 1, got {n_sectors}")
        if not 1 <= n_shards <= n_sectors:
            raise ValueError(
                f"n_shards must be in [1, {n_sectors} sectors], got {n_shards}"
            )
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        assignment = np.array(
            [sector_shard(sector, n_shards) for sector in range(n_sectors)],
            dtype=np.int64,
        )
        # Deterministic empty-shard repair: every shard must own at least
        # one sector or its worker would journal an empty-width WAL.  Move
        # the highest-index sector off the currently largest shard (ties:
        # lowest shard id) onto the lowest empty shard, repeating until
        # no shard is empty — pure function of (n_sectors, n_shards).
        counts = np.bincount(assignment, minlength=n_shards)
        while (counts == 0).any():
            empty = int(np.flatnonzero(counts == 0)[0])
            donor = int(np.argmax(counts))
            mover = int(np.flatnonzero(assignment == donor)[-1])
            assignment[mover] = empty
            counts[donor] -= 1
            counts[empty] += 1
        return cls(
            n_sectors=n_sectors,
            n_shards=n_shards,
            generation=generation,
            assignment=assignment,
        )

    # ------------------------------------------------------------ queries
    def sectors_of(self, shard: int) -> np.ndarray:
        """Global sector ids owned by *shard*, ascending."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} outside [0, {self.n_shards})")
        return np.flatnonzero(self.assignment == shard)

    def counts(self) -> np.ndarray:
        """Sectors per shard, shape ``(n_shards,)``."""
        return np.bincount(self.assignment, minlength=self.n_shards)

    def shard_dir(self, shard: int) -> str:
        """Generation-scoped checkpoint directory name for *shard*."""
        return f"g{self.generation:04d}-shard-{shard:04d}"

    # -------------------------------------------------------- persistence
    def save(self, directory: str | Path) -> Path:
        """Atomically persist this plan as ``partition.json``.

        The write is the reshard's commit point: recovery trusts
        whatever generation the file names, so it must flip from old to
        new plan atomically (temp file + ``os.replace`` via
        :func:`~repro.data.store.write_json_atomic`).
        """
        path = Path(directory) / PARTITION_NAME
        write_json_atomic(
            path,
            {
                "n_sectors": self.n_sectors,
                "n_shards": self.n_shards,
                "generation": self.generation,
                "assignment": [int(s) for s in self.assignment],
            },
        )
        return path

    @classmethod
    def load(cls, directory: str | Path) -> "PartitionPlan":
        """Load the persisted plan from *directory* (raises if absent)."""
        path = Path(directory) / PARTITION_NAME
        payload = json.loads(path.read_text(encoding="utf-8"))
        assignment = np.asarray(payload["assignment"], dtype=np.int64)
        plan = cls(
            n_sectors=int(payload["n_sectors"]),
            n_shards=int(payload["n_shards"]),
            generation=int(payload["generation"]),
            assignment=assignment,
        )
        if assignment.shape != (plan.n_sectors,):
            raise ValueError(
                f"partition table covers {assignment.size} sectors, "
                f"header says {plan.n_sectors}"
            )
        if assignment.size and not (
            (0 <= assignment) & (assignment < plan.n_shards)
        ).all():
            raise ValueError("partition table references out-of-range shards")
        return plan


def rebalance_moves(old: PartitionPlan, new: PartitionPlan) -> list[dict]:
    """Per-sector moves turning *old*'s placement into *new*'s.

    Each move is ``{"sector", "from", "to"}``; sectors whose home shard
    is unchanged do not appear.  This is the work list the reshard
    recovery executes (it gathers the moved sectors' ring rows out of
    the old shards' checkpoints and scatters them into the new ones).
    """
    if old.n_sectors != new.n_sectors:
        raise ValueError(
            f"plans cover different networks: {old.n_sectors} vs "
            f"{new.n_sectors} sectors"
        )
    moved = np.flatnonzero(old.assignment != new.assignment)
    return [
        {
            "sector": int(sector),
            "from": int(old.assignment[sector]),
            "to": int(new.assignment[sector]),
        }
        for sector in moved
    ]
