"""Shard worker: one engine, one WAL, one slice of the sector space.

A :class:`ShardWorker` owns the rows of the KPI tensor assigned to it by
the :class:`~repro.fleet.partition.PartitionPlan` and wraps the same
primitives the single-engine serve path composes — a
:class:`~repro.serve.ingest.StreamIngestor` over its local sectors, a
:class:`~repro.resilience.degrade.ResilientPredictionEngine`, its own
:class:`~repro.resilience.checkpoint.CheckpointManager` (WAL + atomic
snapshots) and :class:`~repro.resilience.validate.DarkSectorTracker`,
and optionally a per-shard
:class:`~repro.lifecycle.controller.LifecycleController`.

Deliberate deviation from a naive "worker wraps
``ResilientHotSpotService``" layering: tick *validation* and dark-alert
*masking* are global decisions (a tick is quarantined for the whole
network or not at all, and top-k alert selection must see every
sector's score before dark sectors are stripped), so they live in the
coordinator.  The worker's job is the per-row part: apply the tick,
answer with *fragments* — local hot sectors, the full local score
vector per horizon, newly-dark sectors — that the coordinator merges
into the same event stream the single engine would emit.

Crash consistency per tick (apply → journal → acknowledge):

1. ``maybe_snapshot`` — snapshot boundaries land *between* ticks;
2. apply — engine ingest, fragment computation, lifecycle day hook
   (which commits its own ``lifecycle.json`` first, see DESIGN.md 3e),
   dark-tracker update;
3. persist the response into ``last_events.json`` (atomic, only when
   the response is non-trivial — the empty ⇔ not-persisted invariant;
   the file holds every non-trivial response since the coordinator's
   acknowledged boundary, so mid-block crashes re-emit faithfully);
4. journal the tick into the WAL (fsynced append, the commit point).

A worker killed anywhere in that sequence recovers to a state from
which re-driving the same hour yields the identical response: before
step 4 the hour is simply re-applied; after step 4 the worker re-emits
the persisted response (or reconstructs the trivial one) without
touching state.  :attr:`ShardWorker.kill_at` injects
:class:`SimulatedKill` at the three seams for the kill-point suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.store import write_json_atomic
from repro.data.tensor import HOURS_PER_DAY, HOURS_PER_WEEK
from repro.fleet.partition import PartitionPlan
from repro.lifecycle.controller import LifecycleController
from repro.lifecycle.drift import DriftConfig
from repro.lifecycle.promote import PromotionConfig
from repro.lifecycle.retrain import RetrainConfig
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.degrade import ResilientPredictionEngine
from repro.resilience.validate import DarkSectorTracker
from repro.serve.ingest import StreamIngestor
from repro.serve.registry import ModelKey, ModelRegistry

__all__ = [
    "EVENTS_NAME",
    "FleetConfig",
    "FleetLifecycleSpec",
    "FleetProtocolError",
    "ShardWorker",
    "SimulatedKill",
    "build_worker",
]

#: Per-shard file holding the non-trivial responses of the current
#: unacknowledged window, keyed by hour (``{"hours": {hour: response}}``).
EVENTS_NAME = "last_events.json"

#: Hours a sector must be fully missing before it is considered dark
#: (mirrors :class:`DarkSectorTracker`'s default; overridable per fleet
#: so tests can exercise masking without replaying half a week).
DEFAULT_DARK_THRESHOLD = HOURS_PER_WEEK // 2


class SimulatedKill(RuntimeError):
    """Injected crash for the kill-point suite — never raised in prod."""


class FleetProtocolError(RuntimeError):
    """A shard was driven out of protocol (wrong hour, wrong shape)."""


@dataclass(frozen=True)
class FleetLifecycleSpec:
    """Per-shard lifecycle wiring (drift monitor, retrainer, promoter).

    When present each shard runs its own
    :class:`~repro.lifecycle.controller.LifecycleController` against a
    private versioned registry under its checkpoint directory, seeded
    with the global champion.  Retraining then happens on shard-local
    rings, so different shards may legitimately promote different
    versions — the fleet stream is still deterministic and
    crash-consistent for a fixed shard count, but no longer comparable
    to a single-engine run (and resharding is refused, because shard
    lifecycle state cannot be re-partitioned).
    """

    retrain: RetrainConfig
    drift: DriftConfig | None = None
    promotion: PromotionConfig | None = None
    start_day: int | None = None


@dataclass(frozen=True)
class FleetConfig:
    """Everything a worker or coordinator needs to rebuild the fleet.

    Plain picklable data — it crosses the fork boundary into process
    workers and is reconstructed from CLI flags on resume.  Anchors
    (``start_weekday`` etc.) pin every shard's calendar derivation to
    the dataset's time axis so gap synthesis is identical across shards
    and identical to the single-engine path.
    """

    n_sectors: int
    n_kpis: int
    registry_root: str
    model: str = "RF-F1"
    target: str = "hot"
    window: int = 7
    horizons: tuple = (1,)
    start_day: int = 0
    top_k: int = 5
    alert_threshold: float | None = None
    w_max: int = 21
    start_weekday: int = 0
    start_hour: int = 0
    start_day_of_month: int = 1
    snapshot_every: int = 168
    dark_threshold_hours: int = DEFAULT_DARK_THRESHOLD
    lifecycle: FleetLifecycleSpec | None = None

    @classmethod
    def for_dataset(cls, dataset, registry_root: str | Path, **overrides) -> "FleetConfig":
        """Config anchored to *dataset*'s shape and time axis.

        Mirrors :meth:`StreamIngestor.for_dataset` exactly (anchors from
        the time axis, ``start_day_of_month`` left at its default) so a
        fleet over *dataset* synthesises the same gap calendar rows as a
        single engine built the usual way.
        """
        axis = dataset.time_axis
        overrides.setdefault("start_weekday", axis.start_weekday)
        overrides.setdefault("start_hour", axis.start_hour)
        return cls(
            n_sectors=dataset.n_sectors,
            n_kpis=dataset.kpis.n_kpis,
            registry_root=str(registry_root),
            **overrides,
        )


class ShardWorker:
    """One shard's engine, checkpoint, and dark tracker."""

    def __init__(
        self,
        shard_id: int,
        sector_ids: np.ndarray,
        config: FleetConfig,
        ingestor: StreamIngestor,
        engine: ResilientPredictionEngine,
        checkpoint: CheckpointManager,
        dark: DarkSectorTracker,
        controller: LifecycleController | None = None,
        events_path: Path | None = None,
        responses: dict | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.sector_ids = np.asarray(sector_ids, dtype=np.int64)
        self.config = config
        self.ingestor = ingestor
        self.engine = engine
        self.checkpoint = checkpoint
        self.dark = dark
        self.controller = controller
        self._events_path = events_path
        self._responses: dict[int, dict] = dict(responses or {})
        #: ``(point, hour)`` → raise :class:`SimulatedKill` at that seam.
        self.kill_at: tuple | None = None
        #: Optional ``hook(point, hour)`` invoked at every crash seam
        #: before the in-process kill check.  The process-level chaos
        #: harness installs one that SIGKILLs or hangs the hosting
        #: process (:func:`repro.resilience.chaos.install_process_faults`)
        #: so the supervisor sees a real worker death, not an exception.
        self.seam_hook = None

    # ------------------------------------------------------------ driving
    def submit(
        self,
        hour: int,
        values: np.ndarray,
        missing: np.ndarray,
        calendar_row: np.ndarray | None,
    ) -> dict:
        """Apply one validated (or gap-synthesised) tick to this shard.

        *values*/*missing* are already sliced to the shard's local rows.
        Hours strictly below the shard clock are re-emitted from the
        persisted response (the post-journal crash window); the hour at
        the clock is applied; anything else is a protocol error.
        """
        hour = int(hour)
        clock = self.ingestor.hours_seen
        if hour < clock:
            return self._reemit(hour)
        if hour != clock:
            raise FleetProtocolError(
                f"shard {self.shard_id} at hour {clock} was driven with "
                f"hour {hour}"
            )
        self.checkpoint.maybe_snapshot(self.ingestor)
        self._maybe_kill("mid_apply", hour)
        tick = self.engine.ingest_hour(values, missing, calendar_row)
        response = self._trivial_response(hour)
        response["day_completed"] = bool(tick.day_completed)
        response["t_day"] = int(tick.t_day)
        if tick.day_completed:
            labels = self.ingestor.labels_daily
            hot_local = np.flatnonzero(labels[:, tick.t_day] == 1)
            response["hot"] = [int(self.sector_ids[i]) for i in hot_local]
            if tick.t_day >= self.config.start_day:
                for horizon in self.config.horizons:
                    scores = self.engine.predict(int(horizon))
                    response["scores"][str(int(horizon))] = [
                        float(s) for s in scores
                    ]
            if self.controller is not None:
                response["lifecycle"] = self.controller.on_day(tick)
        newly_dark = self.dark.observe(missing)
        for local in newly_dark:
            response["dark_new"].append(
                [int(self.sector_ids[int(local)]), int(self.dark.missing_run(int(local)))]
            )
        if tick.day_completed:
            response["dark_mask"] = [bool(x) for x in self.dark.dark_mask]
        if self._nontrivial(response):
            self._persist_responses({hour: response})
        self._maybe_kill("mid_journal", hour)
        if calendar_row is None:
            calendar_row = self.ingestor._default_calendar_row(hour)
        self.checkpoint.record_tick(hour, values, missing, calendar_row)
        self._maybe_kill("post_journal", hour)
        return response

    def submit_block(
        self,
        first_hour: int,
        values: np.ndarray,
        missing: np.ndarray,
        calendar_rows: np.ndarray | None,
        released_before: int | None = None,
    ) -> list[dict]:
        """Apply a micro-batch of validated consecutive hours.

        Returns one response dict per block column, identical to what
        per-hour :meth:`submit` calls would produce.  Hours below the
        shard clock re-emit (the post-journal crash window covers whole
        journaled chunks after a mid-block crash); the remainder is
        applied in day-aligned chunks via the columnar engine ingest,
        with the per-hour crash contract at chunk granularity: persist
        every non-trivial response of the chunk, then journal the whole
        chunk with one batched WAL flush.  A crash mid-chunk leaves
        every hour of that chunk out of the journal, so the coordinator
        re-drives the chunk from its first hour on resume.

        *released_before* is the coordinator's acknowledged boundary
        (its watermark at block entry): persisted responses at or past
        it must survive this call's persists, because a crash anywhere
        in the block re-drives from that boundary and every non-trivial
        hour since then must re-emit faithfully — not collapse to the
        trivial response.  When ``None`` (direct single-call use) the
        block's own first hour is the boundary.

        Kill seams fire when the armed hour falls anywhere inside the
        chunk being processed — ``mid_apply`` before the chunk is
        applied, ``mid_journal``/``post_journal`` around its WAL append.
        """
        keep_from = int(first_hour if released_before is None else released_before)
        first_hour = int(first_hour)
        n_hours = int(values.shape[1])
        clock = self.ingestor.hours_seen
        responses: list[dict] = []
        start = 0
        while start < n_hours and first_hour + start < clock:
            responses.append(self._reemit(first_hour + start))
            start += 1
        if start == n_hours:
            return responses
        if first_hour + start != clock:
            raise FleetProtocolError(
                f"shard {self.shard_id} at hour {clock} was driven with "
                f"hour {first_hour + start}"
            )
        while start < n_hours:
            hour0 = first_hour + start
            to_boundary = HOURS_PER_DAY - hour0 % HOURS_PER_DAY
            stop = min(start + to_boundary, n_hours)
            self.checkpoint.maybe_snapshot(self.ingestor)
            self._maybe_kill_range("mid_apply", hour0, first_hour + stop)
            ticks = self.engine.ingest_block(
                values[:, start:stop, :],
                missing[:, start:stop, :],
                None if calendar_rows is None else calendar_rows[start:stop],
            )
            chunk: list[dict] = []
            for j, tick in enumerate(ticks):
                hour = hour0 + j
                response = self._trivial_response(hour)
                response["day_completed"] = bool(tick.day_completed)
                response["t_day"] = int(tick.t_day)
                if tick.day_completed:
                    labels = self.ingestor.labels_daily
                    hot_local = np.flatnonzero(labels[:, tick.t_day] == 1)
                    response["hot"] = [int(self.sector_ids[i]) for i in hot_local]
                    if tick.t_day >= self.config.start_day:
                        for horizon in self.config.horizons:
                            scores = self.engine.predict(int(horizon))
                            response["scores"][str(int(horizon))] = [
                                float(s) for s in scores
                            ]
                    if self.controller is not None:
                        response["lifecycle"] = self.controller.on_day(tick)
                newly_dark = self.dark.observe(missing[:, start + j, :])
                for local in newly_dark:
                    response["dark_new"].append(
                        [
                            int(self.sector_ids[int(local)]),
                            int(self.dark.missing_run(int(local))),
                        ]
                    )
                if tick.day_completed:
                    response["dark_mask"] = [bool(x) for x in self.dark.dark_mask]
                chunk.append(response)
            fresh = {
                hour0 + j: response
                for j, response in enumerate(chunk)
                if self._nontrivial(response)
            }
            if fresh:
                self._persist_responses(fresh, keep_from=keep_from)
            self._maybe_kill_range("mid_journal", hour0, first_hour + stop)
            if calendar_rows is None:
                calendar_block = np.stack(
                    [
                        self.ingestor._default_calendar_row(h)
                        for h in range(hour0, first_hour + stop)
                    ]
                )
            else:
                calendar_block = calendar_rows[start:stop]
            self.checkpoint.record_block(
                hour0,
                values[:, start:stop, :],
                missing[:, start:stop, :],
                calendar_block,
            )
            self._maybe_kill_range("post_journal", hour0, first_hour + stop)
            responses.extend(chunk)
            start = stop
        return responses

    def _reemit(self, hour: int) -> dict:
        """Response for an hour already journaled by this shard.

        Non-trivial responses were persisted *before* the journal append
        (the empty ⇔ not-persisted invariant), so a journaled hour with
        no persisted record was trivial — reconstruct it.  The store
        covers every hour since the coordinator's acknowledged boundary;
        hours older than that only occur when the coordinator replays a
        window the consumer already saw (at-most-once delivery,
        DESIGN.md 3f), and re-emit as trivial.
        """
        persisted = self._responses.get(int(hour))
        if persisted is not None:
            return persisted
        return self._trivial_response(hour)

    def _persist_responses(self, fresh: dict, keep_from: int | None = None) -> None:
        """Atomically persist non-trivial responses for the re-emit path.

        Per-hour ticks are acknowledged every call, so only the current
        hour is retained (*keep_from* ``None``).  Block submissions
        acknowledge nothing until the whole coordinator block returns,
        so entries at or past *keep_from* — the acknowledged boundary —
        survive later chunks' persists.
        """
        if keep_from is None:
            store = {int(h): r for h, r in fresh.items()}
        else:
            store = {
                h: r for h, r in self._responses.items() if h >= int(keep_from)
            }
            store.update({int(h): r for h, r in fresh.items()})
        self._responses = store
        if self._events_path is not None:
            write_json_atomic(
                self._events_path,
                {"hours": {str(h): store[h] for h in sorted(store)}},
            )

    @staticmethod
    def _trivial_response(hour: int) -> dict:
        return {
            "hour": int(hour),
            "day_completed": (hour + 1) % HOURS_PER_DAY == 0,
            "t_day": (hour + 1) // HOURS_PER_DAY - 1,
            "hot": [],
            "scores": {},
            "dark_new": [],
            "dark_mask": [],
            "lifecycle": [],
        }

    @staticmethod
    def _nontrivial(response: dict) -> bool:
        return bool(
            response["day_completed"]
            or response["dark_new"]
            or response["lifecycle"]
        )

    def _maybe_kill(self, point: str, hour: int) -> None:
        if self.seam_hook is not None:
            self.seam_hook(point, hour)
        if self.kill_at == (point, hour):
            self.kill_at = None
            raise SimulatedKill(
                f"simulated crash: shard {self.shard_id} at {point} of hour {hour}"
            )

    def _maybe_kill_range(self, point: str, lo: int, hi: int) -> None:
        """Block-path kill seam: fire when the armed hour is in [lo, hi)."""
        if self.seam_hook is not None:
            for hour in range(lo, hi):
                self.seam_hook(point, hour)
        if self.kill_at is not None and self.kill_at[0] == point:
            hour = self.kill_at[1]
            if lo <= hour < hi:
                self.kill_at = None
                raise SimulatedKill(
                    f"simulated crash: shard {self.shard_id} at {point} of "
                    f"hour {hour} (block chunk [{lo}, {hi}))"
                )

    # ------------------------------------------------------------ queries
    def ring_payload(self, hour: int):
        """Local ring rows for *hour*, or None if outside the window."""
        clock = self.ingestor.hours_seen
        if not 0 <= hour < clock or hour < clock - self.ingestor.capacity:
            return None
        slot = hour % self.ingestor.capacity
        return (
            self.ingestor.values[:, slot, :].copy(),
            self.ingestor.missing[:, slot, :].copy(),
        )

    def predict_fragment(
        self, horizon: int, model: str | None = None, window: int | None = None
    ) -> np.ndarray:
        """Local score vector for *horizon* (full slice, no top-k)."""
        return np.asarray(
            self.engine.predict(int(horizon), model=model, window=window),
            dtype=np.float64,
        )

    def stats(self) -> dict:
        snapshot = self.engine.stats()
        snapshot["shard"] = {
            "shard_id": self.shard_id,
            "n_sectors": int(self.sector_ids.size),
            "hours_seen": self.ingestor.hours_seen,
            "dark_sectors": int(self.dark.dark_mask.sum()),
        }
        if self.controller is not None:
            snapshot["lifecycle"] = self.controller.stats()
        return snapshot

    def close(self) -> None:
        self.checkpoint.close()


def build_worker(
    directory: str | Path,
    plan: PartitionPlan,
    shard_id: int,
    config: FleetConfig,
    resume: bool = False,
) -> ShardWorker:
    """Construct (or recover) the worker for *shard_id*.

    With ``resume`` the shard's checkpoint directory is replayed
    (snapshot + WAL), the dark tracker is rebuilt from the recovered
    ring (:meth:`DarkSectorTracker.backfill_from_ring`), and the last
    persisted response is reloaded for the re-emit path.
    """
    shard_dir = Path(directory) / plan.shard_dir(shard_id)
    sector_ids = plan.sectors_of(shard_id)
    n_local = int(sector_ids.size)
    ingestor: StreamIngestor | None = None
    if resume:
        recovered = CheckpointManager.recover(shard_dir)
        ingestor = recovered.ingestor
    if ingestor is None:
        ingestor = StreamIngestor(
            n_sectors=n_local,
            n_kpis=config.n_kpis,
            w_max=config.w_max,
            start_weekday=config.start_weekday,
            start_hour=config.start_hour,
            start_day_of_month=config.start_day_of_month,
        )
    checkpoint = CheckpointManager.for_ingestor(
        shard_dir, ingestor, snapshot_every=config.snapshot_every
    )
    registry = _shard_registry(shard_dir, config)
    engine = ResilientPredictionEngine(
        ingestor,
        registry,
        target=config.target,
        model=config.model,
        window=config.window,
    )
    dark = DarkSectorTracker(
        n_local, threshold_hours=config.dark_threshold_hours
    )
    if resume:
        dark.backfill_from_ring(ingestor)
    controller = None
    if config.lifecycle is not None:
        spec = config.lifecycle
        controller = LifecycleController(
            engine,
            drift=spec.drift,
            retrain=spec.retrain,
            promotion=spec.promotion,
            state_path=checkpoint.state_path("lifecycle.json"),
            start_day=config.start_day if spec.start_day is None else spec.start_day,
            n_jobs=1,
        )
    events_path = shard_dir / EVENTS_NAME
    responses: dict[int, dict] = {}
    if resume and events_path.exists():
        payload = json.loads(events_path.read_text(encoding="utf-8"))
        if "hours" in payload:
            responses = {int(h): r for h, r in payload["hours"].items()}
        elif "hour" in payload:  # pre-block single-response layout
            responses = {int(payload["hour"]): payload}
    return ShardWorker(
        shard_id=shard_id,
        sector_ids=sector_ids,
        config=config,
        ingestor=ingestor,
        engine=engine,
        checkpoint=checkpoint,
        dark=dark,
        controller=controller,
        events_path=events_path,
        responses=responses,
    )


def _shard_registry(shard_dir: Path, config: FleetConfig) -> ModelRegistry:
    """The registry a shard's engine reads models from.

    Static-champion fleets share the global registry read-only — every
    shard sees the same trained artifacts, which is what single-engine
    parity requires.  Lifecycle fleets get a private registry under the
    shard directory, seeded with the global champion for each serving
    horizon, so per-shard retrains version independently.
    """
    if config.lifecycle is None:
        return ModelRegistry(config.registry_root)
    global_registry = ModelRegistry(config.registry_root)
    shard_registry = ModelRegistry(shard_dir / "registry")
    for horizon in config.horizons:
        key = ModelKey(
            target=config.target,
            model=config.model,
            horizon=int(horizon),
            window=config.window,
        )
        if key not in shard_registry:
            shard_registry.save(key, global_registry.get(key))
    return shard_registry
