"""Statistical utilities shared across the library.

This subpackage implements the generic statistical tooling the paper
relies on, independently of the telemetry domain:

* :mod:`repro.stats.ks` — two-sample Kolmogorov–Smirnov test used in
  the temporal-stability analysis (paper Sec. V-A).
* :mod:`repro.stats.correlation` — vectorised, NaN-aware Pearson
  correlation used by the spatial dynamics analysis (paper Sec. III).
* :mod:`repro.stats.buckets` — logarithmically spaced bucketing of
  distances (paper Fig. 8).
* :mod:`repro.stats.runs` — run-length encoding of binary sequences
  used for the "consecutive hours/days as hot spot" histograms
  (paper Fig. 7).
"""

from repro.stats.buckets import LogBuckets, bucket_indices
from repro.stats.correlation import (
    pairwise_pearson,
    pearson,
    pearson_matrix_to_targets,
)
from repro.stats.ks import KSResult, ks_two_sample
from repro.stats.runs import (
    run_lengths,
    run_length_histogram,
    runs_decode,
    runs_encode,
)

__all__ = [
    "KSResult",
    "LogBuckets",
    "bucket_indices",
    "ks_two_sample",
    "pairwise_pearson",
    "pearson",
    "pearson_matrix_to_targets",
    "run_length_histogram",
    "run_lengths",
    "runs_decode",
    "runs_encode",
]
