"""Run-length utilities for binary hot spot sequences.

The temporal dynamics analysis (paper Fig. 7) counts *consecutive* hours
and days a sector stays a hot spot.  That is a run-length computation over
binary label sequences.  This module implements run-length encoding,
decoding, and histogramming of the one-runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["runs_encode", "runs_decode", "run_lengths", "run_length_histogram"]


def runs_encode(binary: np.ndarray) -> list[tuple[int, int]]:
    """Run-length encode a one-dimensional binary array.

    Returns a list of ``(value, length)`` pairs whose expansion
    reproduces the input.  Empty input yields an empty list.
    """
    arr = np.asarray(binary).ravel().astype(np.int8)
    if arr.size == 0:
        return []
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("input must be binary (0/1)")
    change_points = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate([[0], change_points])
    ends = np.concatenate([change_points, [arr.size]])
    return [(int(arr[s]), int(e - s)) for s, e in zip(starts, ends)]


def runs_decode(runs: list[tuple[int, int]]) -> np.ndarray:
    """Expand ``(value, length)`` pairs back into a binary array."""
    if not runs:
        return np.zeros(0, dtype=np.int8)
    values, lengths = zip(*runs)
    for value, length in runs:
        if value not in (0, 1):
            raise ValueError(f"run value must be 0 or 1, got {value}")
        if length <= 0:
            raise ValueError(f"run length must be positive, got {length}")
    return np.repeat(np.asarray(values, dtype=np.int8), lengths)


def run_lengths(binary: np.ndarray, value: int = 1) -> np.ndarray:
    """Lengths of all maximal runs of *value* in a binary array."""
    return np.asarray(
        [length for run_value, length in runs_encode(binary) if run_value == value],
        dtype=np.int64,
    )


def run_length_histogram(
    sequences: np.ndarray, max_length: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Normalised histogram of one-run lengths across many sequences.

    Parameters
    ----------
    sequences:
        Shape ``(n, m)`` matrix of binary sequences, one per row (e.g.
        the hot spot labels ``Y`` with sectors as rows), or a single
        one-dimensional sequence.
    max_length:
        Upper bound for the histogram support.  Defaults to the longest
        observed run.

    Returns
    -------
    (lengths, relative_counts):
        ``lengths`` is ``[1, 2, ..., L]``; ``relative_counts`` sums to 1
        (both empty if no runs exist).
    """
    mat = np.atleast_2d(np.asarray(sequences))
    all_lengths: list[np.ndarray] = [run_lengths(row) for row in mat]
    flat = np.concatenate(all_lengths) if all_lengths else np.zeros(0, dtype=np.int64)
    if flat.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    longest = int(flat.max()) if max_length is None else int(max_length)
    counts = np.bincount(np.minimum(flat, longest), minlength=longest + 1)[1:]
    total = counts.sum()
    relative = counts / total if total > 0 else counts.astype(np.float64)
    return np.arange(1, longest + 1, dtype=np.int64), relative
