"""Logarithmically spaced bucketing.

The spatial correlation analysis (paper Fig. 8) distributes sector-pair
correlation values across logarithmically spaced distance buckets, with a
dedicated first bucket for distance 0 (sectors on the same tower).  This
module provides that bucketing as a small reusable component.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LogBuckets", "bucket_indices"]


@dataclass(frozen=True)
class LogBuckets:
    """Log-spaced distance buckets with a dedicated zero bucket.

    The paper's Fig. 8 x-axis is ``0, 0.1, 0.2, 0.4, 0.8, 1.6, 3, 6, 12,
    25, 51, 102, 204`` km: a zero bucket followed by a dyadic progression.
    The default edges reproduce exactly that axis.

    Attributes
    ----------
    edges:
        Increasing array of positive bucket upper edges (km).  A value
        ``d`` with ``0 < d <= edges[0]`` falls in bucket 1, values in
        ``(edges[i-1], edges[i]]`` fall in bucket ``i + 1``; bucket 0 is
        reserved for ``d == 0``.  Values above the last edge are clipped
        into the last bucket.
    """

    edges: tuple[float, ...] = (
        0.1,
        0.2,
        0.4,
        0.8,
        1.6,
        3.0,
        6.0,
        12.0,
        25.0,
        51.0,
        102.0,
        204.0,
    )

    def __post_init__(self) -> None:
        arr = np.asarray(self.edges, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("edges must be non-empty")
        if np.any(arr <= 0):
            raise ValueError("edges must be strictly positive")
        if np.any(np.diff(arr) <= 0):
            raise ValueError("edges must be strictly increasing")

    @property
    def n_buckets(self) -> int:
        """Number of buckets, including the zero bucket."""
        return len(self.edges) + 1

    @property
    def labels(self) -> list[str]:
        """Human-readable bucket labels, matching the paper's x-axis."""
        def fmt(value: float) -> str:
            return f"{value:g}"

        return ["0"] + [fmt(edge) for edge in self.edges]

    def assign(self, distances: np.ndarray) -> np.ndarray:
        """Map each distance (km) to its bucket index.

        Parameters
        ----------
        distances:
            Array of non-negative distances.

        Returns
        -------
        numpy.ndarray
            Integer bucket indices in ``[0, n_buckets)`` with the same
            shape as the input.
        """
        d = np.asarray(distances, dtype=np.float64)
        if np.any(d < 0):
            raise ValueError("distances must be non-negative")
        edges = np.asarray(self.edges, dtype=np.float64)
        idx = np.searchsorted(edges, d, side="left") + 1
        idx = np.minimum(idx, self.n_buckets - 1)
        idx[d == 0.0] = 0
        return idx


def bucket_indices(distances: np.ndarray, buckets: LogBuckets | None = None) -> np.ndarray:
    """Convenience wrapper: assign *distances* to default :class:`LogBuckets`."""
    return (buckets or LogBuckets()).assign(distances)
