"""Pearson correlation helpers.

The spatial dynamics analysis (paper Sec. III, Fig. 8) computes Pearson
correlation coefficients between the hourly hot spot label time series of
hundreds of sector pairs per sector.  The functions here are vectorised so
that one call correlates a single reference series against a whole matrix
of candidate series, which is the shape that analysis needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pearson", "pairwise_pearson", "pearson_matrix_to_targets"]


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation between two one-dimensional series.

    Returns 0.0 when either series is constant (the correlation is then
    undefined; 0 is the conventional "no linear relationship" fallback
    used throughout the spatial analysis, where never-hot sectors produce
    constant label series).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError(f"series length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("need at least two observations")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return 0.0
    return float((xc * yc).sum() / denom)


def pairwise_pearson(reference: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Correlate one reference series against many candidate series.

    Parameters
    ----------
    reference:
        Shape ``(m,)`` series.
    candidates:
        Shape ``(k, m)`` matrix of candidate series, one per row.

    Returns
    -------
    numpy.ndarray
        Shape ``(k,)`` array of Pearson coefficients; rows where either
        side is constant yield 0.0.
    """
    ref = np.asarray(reference, dtype=np.float64).ravel()
    cand = np.asarray(candidates, dtype=np.float64)
    if cand.ndim != 2:
        raise ValueError(f"candidates must be 2-D, got shape {cand.shape}")
    if cand.shape[1] != ref.size:
        raise ValueError(
            f"length mismatch: reference has {ref.size}, candidates have {cand.shape[1]}"
        )
    ref_c = ref - ref.mean()
    cand_c = cand - cand.mean(axis=1, keepdims=True)
    ref_norm = np.sqrt((ref_c * ref_c).sum())
    cand_norm = np.sqrt((cand_c * cand_c).sum(axis=1))
    denom = ref_norm * cand_norm
    numer = cand_c @ ref_c
    out = np.zeros(cand.shape[0], dtype=np.float64)
    valid = denom > 0.0
    out[valid] = numer[valid] / denom[valid]
    return out


def pearson_matrix_to_targets(series: np.ndarray) -> np.ndarray:
    """Full pairwise Pearson correlation matrix between the rows of *series*.

    Constant rows correlate 0.0 with everything (including themselves),
    matching the convention of :func:`pairwise_pearson`.

    Parameters
    ----------
    series:
        Shape ``(n, m)``: n series of length m.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, n)`` symmetric correlation matrix.
    """
    mat = np.asarray(series, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError(f"series must be 2-D, got shape {mat.shape}")
    centered = mat - mat.mean(axis=1, keepdims=True)
    norms = np.sqrt((centered * centered).sum(axis=1))
    safe = norms.copy()
    safe[safe == 0.0] = 1.0
    normalised = centered / safe[:, None]
    corr = normalised @ normalised.T
    constant = norms == 0.0
    corr[constant, :] = 0.0
    corr[:, constant] = 0.0
    return corr
