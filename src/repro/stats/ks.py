"""Two-sample Kolmogorov–Smirnov test.

The paper (Sec. V-A) assesses temporal stability of forecasting results by
splitting the evaluated days ``t`` into two halves and comparing the two
empirical distributions of average precision values with a two-sample
Kolmogorov–Smirnov (KS) test.  The null hypothesis is that both samples
come from the same continuous distribution; the paper reports that no
p-value falls below 0.01 and only 1.1 % fall below 0.05.

This module implements the two-sided two-sample KS test from first
principles.  The p-value uses the classical asymptotic Kolmogorov
distribution with the Stephens effective-sample-size correction, which is
the same approximation scipy uses in ``mode="asymp"``.  The test suite
cross-validates both the statistic and the p-value against
``scipy.stats.ks_2samp``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["KSResult", "ks_two_sample", "kolmogorov_sf"]


@dataclass(frozen=True)
class KSResult:
    """Outcome of a two-sample Kolmogorov–Smirnov test.

    Attributes
    ----------
    statistic:
        The KS statistic ``D``: the supremum of the absolute difference
        between the two empirical cumulative distribution functions.
        Always in ``[0, 1]``.
    pvalue:
        Asymptotic two-sided p-value for the null hypothesis that both
        samples are drawn from the same distribution.
    n1, n2:
        Sizes of the two samples.
    """

    statistic: float
    pvalue: float
    n1: int
    n2: int

    def rejects_null(self, alpha: float = 0.05) -> bool:
        """Return True if the null hypothesis is rejected at level *alpha*."""
        return self.pvalue < alpha


def kolmogorov_sf(x: float, terms: int = 101) -> float:
    """Survival function of the Kolmogorov distribution.

    ``Q(x) = 2 * sum_{k=1..inf} (-1)^(k-1) * exp(-2 k^2 x^2)``

    Parameters
    ----------
    x:
        Evaluation point; must be non-negative.
    terms:
        Number of series terms.  The series converges extremely fast for
        ``x > 0.5``; 101 terms is far more than enough for double
        precision over the whole useful range.

    Returns
    -------
    float
        ``P(K > x)``, clipped to ``[0, 1]``.
    """
    if x < 0:
        raise ValueError(f"x must be non-negative, got {x}")
    if x == 0:
        return 1.0
    # For very small x the alternating series needs many terms; use the
    # Jacobi-theta dual form which converges quickly there instead.
    if x < 0.3:
        # Q(x) = 1 - (sqrt(2*pi)/x) * sum exp(-(2k-1)^2 pi^2 / (8 x^2))
        total = 0.0
        for k in range(1, terms):
            total += math.exp(-((2 * k - 1) ** 2) * math.pi**2 / (8.0 * x * x))
        return float(np.clip(1.0 - math.sqrt(2.0 * math.pi) / x * total, 0.0, 1.0))
    total = 0.0
    for k in range(1, terms):
        term = math.exp(-2.0 * k * k * x * x)
        total += term if k % 2 == 1 else -term
        if term < 1e-18:
            break
    return float(np.clip(2.0 * total, 0.0, 1.0))


def ks_two_sample(sample1: np.ndarray, sample2: np.ndarray) -> KSResult:
    """Two-sided two-sample Kolmogorov–Smirnov test.

    Parameters
    ----------
    sample1, sample2:
        One-dimensional arrays of observations.  NaNs are not allowed
        (they have no place on an empirical CDF); pass cleaned data.

    Returns
    -------
    KSResult
        Statistic, asymptotic p-value, and the two sample sizes.

    Raises
    ------
    ValueError
        If either sample is empty or contains NaN.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> a, b = rng.normal(size=200), rng.normal(size=200)
    >>> result = ks_two_sample(a, b)
    >>> result.rejects_null(0.01)
    False
    """
    x = np.asarray(sample1, dtype=np.float64).ravel()
    y = np.asarray(sample2, dtype=np.float64).ravel()
    if x.size == 0 or y.size == 0:
        raise ValueError("both samples must be non-empty")
    if np.isnan(x).any() or np.isnan(y).any():
        raise ValueError("samples must not contain NaN")

    n1, n2 = x.size, y.size
    x = np.sort(x)
    y = np.sort(y)
    pooled = np.concatenate([x, y])
    # Empirical CDFs of both samples evaluated at every pooled point.
    cdf1 = np.searchsorted(x, pooled, side="right") / n1
    cdf2 = np.searchsorted(y, pooled, side="right") / n2
    statistic = float(np.max(np.abs(cdf1 - cdf2)))

    effective_n = n1 * n2 / (n1 + n2)
    # Plain asymptotic argument sqrt(m*n/(m+n)) * D, matching
    # scipy.stats.ks_2samp(mode="asymp").
    pvalue = kolmogorov_sf(math.sqrt(effective_n) * statistic)
    return KSResult(statistic=statistic, pvalue=pvalue, n1=n1, n2=n2)
