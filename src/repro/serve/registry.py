"""Model persistence keyed by (target, model, horizon, window).

Trained forecasters are flat-array machines (the CART trees store their
nodes in numpy arrays), so persistence follows the same conventions as
:mod:`repro.data.store`: one compressed ``.npz`` archive per model, with
array entries for every tree plus a small ``meta_json`` payload.  A
reloaded model reproduces the in-memory model's predictions *exactly* —
prediction only touches the flattened node arrays, and float64/int64
round-trip bitwise through npz.

:class:`ModelRegistry` adds the serving niceties on top: lazy loading on
first use, a warm-model LRU so a long-running service keeps only the
hot ``(horizon, window)`` combinations in memory, and hit/load/eviction
statistics for the telemetry layer.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.baselines import (
    AverageModel,
    BaselineModel,
    PersistModel,
    RandomModel,
    TrendModel,
)
from repro.core.forecaster import HotSpotForecaster
from repro.data.store import write_json_atomic
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.regression_tree import RegressionTree
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["ModelKey", "ModelRegistry", "RegistryCorruptError", "train_and_register"]


class RegistryCorruptError(RuntimeError):
    """A registry archive exists but cannot be deserialised.

    Distinct from :class:`FileNotFoundError` (model never registered) so
    the degraded-mode engine can treat both as "model unavailable" while
    operators see the true cause in the event log.
    """

_BASELINE_FACTORIES = {
    "Random": lambda seed: RandomModel(random_state=seed),
    "Persist": lambda seed: PersistModel(),
    "Average": lambda seed: AverageModel(),
    "Trend": lambda seed: TrendModel(),
}


@dataclass(frozen=True)
class ModelKey:
    """Identity of a registered model.

    Attributes
    ----------
    target:
        ``"hot"`` or ``"become"`` — the forecasting task.
    model:
        Registry model name (``RF-F1``, ``Average``, ...).
    horizon:
        Prediction horizon ``h`` (days) baked into the trained model.
    window:
        Past window ``w`` (days) the model consumes.
    version:
        Optional lifecycle version.  ``None`` is the classic unversioned
        entry (PR 1 serving); versioned entries carry a monotonically
        increasing integer assigned by :meth:`ModelRegistry.save_version`
        and coexist with the unversioned one on disk.
    """

    target: str
    model: str
    horizon: int
    window: int
    version: int | None = None

    def __post_init__(self) -> None:
        if self.horizon < 1 or self.window < 1:
            raise ValueError(
                f"horizon and window must be >= 1, got h={self.horizon}, w={self.window}"
            )
        if self.version is not None and self.version < 1:
            raise ValueError(f"version must be >= 1, got {self.version}")
        for field_name in ("target", "model"):
            value = getattr(self, field_name)
            if "__" in value or "/" in value:
                raise ValueError(f"{field_name} must not contain '__' or '/': {value!r}")

    @property
    def base(self) -> "ModelKey":
        """The unversioned key this (possibly versioned) key belongs to."""
        if self.version is None:
            return self
        return ModelKey(self.target, self.model, self.horizon, self.window)

    @property
    def stem(self) -> str:
        parts = f"{self.target}__{self.model}__h{self.horizon:03d}__w{self.window:03d}"
        if self.version is not None:
            parts += f"__v{self.version:04d}"
        return parts

    @property
    def filename(self) -> str:
        return f"{self.stem}.npz"

    @classmethod
    def from_filename(cls, name: str) -> "ModelKey":
        stem = name.removesuffix(".npz")
        parts = stem.split("__")
        if len(parts) == 5:
            target, model, h_part, w_part, v_part = parts
            if not v_part.startswith("v"):
                raise ValueError(f"bad version segment in registry name {name!r}")
            version: int | None = int(v_part.removeprefix("v"))
        elif len(parts) == 4:
            target, model, h_part, w_part = parts
            version = None
        else:
            raise ValueError(f"unrecognised registry name {name!r}")
        return cls(
            target=target,
            model=model,
            horizon=int(h_part.removeprefix("h")),
            window=int(w_part.removeprefix("w")),
            version=version,
        )


# --------------------------------------------------------------- tree (de)ser
# The npz layout predates DecisionTreeClassifier.to_state and must stay
# byte-compatible with existing registries, so the state keys are mapped
# onto the archive's "<prefix><key>" names rather than stored wholesale
# (to_state's scalar n_features entry lives in the model meta instead).
def _pack_classifier_tree(tree: DecisionTreeClassifier, prefix: str, arrays: dict) -> None:
    state = tree.to_state()
    for key in ("feature", "threshold", "left", "right", "proba", "classes", "importances"):
        arrays[f"{prefix}{key}"] = state[key]


def _unpack_classifier_tree(archive, prefix: str, n_features: int) -> DecisionTreeClassifier:
    state = {
        key: archive[f"{prefix}{key}"]
        for key in ("feature", "threshold", "left", "right", "proba", "classes", "importances")
    }
    state["n_features"] = n_features
    return DecisionTreeClassifier.from_state(state)


def _pack_regression_tree(tree: RegressionTree, prefix: str, arrays: dict) -> None:
    arrays[f"{prefix}feature"] = tree._feature
    arrays[f"{prefix}threshold"] = tree._threshold
    arrays[f"{prefix}left"] = tree._left
    arrays[f"{prefix}right"] = tree._right
    arrays[f"{prefix}value"] = tree._value
    arrays[f"{prefix}importances"] = tree.feature_importances_


def _unpack_regression_tree(archive, prefix: str, n_features: int) -> RegressionTree:
    tree = RegressionTree()
    tree._n_features = n_features
    tree._feature = archive[f"{prefix}feature"]
    tree._threshold = archive[f"{prefix}threshold"]
    tree._left = archive[f"{prefix}left"]
    tree._right = archive[f"{prefix}right"]
    tree._value = archive[f"{prefix}value"]
    tree.feature_importances_ = archive[f"{prefix}importances"]
    tree.n_nodes_ = int(tree._feature.size)
    return tree


# ---------------------------------------------------------- model (de)ser
def _dump_model(model) -> tuple[dict, dict]:
    """Split a trained model into (json-able meta, numpy arrays)."""
    arrays: dict[str, np.ndarray] = {}
    if isinstance(model, BaselineModel):
        meta = {
            "family": "baseline",
            "name": model.name,
            "random_state": getattr(model, "random_state", None),
        }
        return meta, arrays
    if not isinstance(model, HotSpotForecaster):
        raise TypeError(f"cannot persist model of type {type(model).__name__}")

    constant = getattr(model, "_constant", None)
    meta = {
        "family": "forecaster",
        "kind": model.kind,
        "feature_view": model.feature_view,
        "n_estimators": model.n_estimators,
        "n_training_days": model.n_training_days,
        "max_depth": model.max_depth,
        "constant": constant,
    }
    arrays["feature_importances"] = np.asarray(model.feature_importances_)
    fitted = model._model
    if fitted is None:
        if constant is None:
            raise RuntimeError("forecaster is not fitted; nothing to persist")
        return meta, arrays

    if isinstance(fitted, DecisionTreeClassifier):
        meta["inner"] = "tree"
        meta["n_features"] = int(fitted._n_features)
        _pack_classifier_tree(fitted, "tree__", arrays)
    elif isinstance(fitted, RandomForestClassifier):
        meta["inner"] = "forest"
        meta["n_members"] = len(fitted.estimators_)
        meta["n_features"] = int(fitted.estimators_[0]._n_features)
        arrays["forest__classes"] = fitted.classes_
        arrays["forest__importances"] = np.asarray(fitted.feature_importances_)
        for i, member in enumerate(fitted.estimators_):
            _pack_classifier_tree(member, f"est{i:03d}__", arrays)
    elif isinstance(fitted, GradientBoostingClassifier):
        meta["inner"] = "boosting"
        meta["n_members"] = len(fitted.estimators_)
        meta["n_features"] = int(fitted.estimators_[0]._n_features)
        meta["initial"] = float(fitted._initial)
        meta["learning_rate"] = float(fitted.learning_rate)
        arrays["boost__classes"] = fitted.classes_
        arrays["boost__importances"] = np.asarray(fitted.feature_importances_)
        for i, stage in enumerate(fitted.estimators_):
            _pack_regression_tree(stage, f"est{i:03d}__", arrays)
    else:
        raise TypeError(f"cannot persist inner model {type(fitted).__name__}")
    return meta, arrays


def _load_model(meta: dict, archive):
    if meta["family"] == "baseline":
        factory = _BASELINE_FACTORIES.get(meta["name"])
        if factory is None:
            raise ValueError(f"unknown baseline {meta['name']!r} in registry entry")
        return factory(meta.get("random_state"))

    forecaster = HotSpotForecaster(
        kind=meta["kind"],
        feature_view=meta["feature_view"],
        n_estimators=meta["n_estimators"],
        n_training_days=meta["n_training_days"],
        max_depth=meta["max_depth"],
    )
    forecaster._constant = meta["constant"]
    forecaster.feature_importances_ = archive["feature_importances"]
    inner = meta.get("inner")
    if inner is None:
        forecaster._model = None
        return forecaster
    n_features = int(meta["n_features"])
    if inner == "tree":
        forecaster._model = _unpack_classifier_tree(archive, "tree__", n_features)
    elif inner == "forest":
        forest = RandomForestClassifier(n_estimators=int(meta["n_members"]))
        forest.classes_ = archive["forest__classes"]
        forest.feature_importances_ = archive["forest__importances"]
        forest.estimators_ = [
            _unpack_classifier_tree(archive, f"est{i:03d}__", n_features)
            for i in range(int(meta["n_members"]))
        ]
        # Pack eagerly: loaded forests go straight into the warm LRU /
        # serving engines, so every forecast_window hits the packed
        # kernel without a first-call packing stall.
        forest.packed()
        forecaster._model = forest
    elif inner == "boosting":
        boosting = GradientBoostingClassifier(
            n_estimators=int(meta["n_members"]),
            learning_rate=float(meta["learning_rate"]),
        )
        boosting.classes_ = archive["boost__classes"]
        boosting._initial = float(meta["initial"])
        boosting.feature_importances_ = archive["boost__importances"]
        boosting.estimators_ = [
            _unpack_regression_tree(archive, f"est{i:03d}__", n_features)
            for i in range(int(meta["n_members"]))
        ]
        forecaster._model = boosting
    else:
        raise ValueError(f"unknown inner model kind {inner!r} in registry entry")
    return forecaster


class ModelRegistry:
    """On-disk model store with a warm-model LRU cache.

    Parameters
    ----------
    root:
        Directory holding one ``.npz`` archive per registered model.
    max_warm:
        Maximum number of deserialised models kept in memory; the least
        recently used model is evicted when the budget is exceeded.
        Evicted models reload transparently from disk on next use.
    """

    def __init__(self, root: str | Path, max_warm: int = 8) -> None:
        if max_warm < 1:
            raise ValueError(f"max_warm must be >= 1, got {max_warm}")
        self.root = Path(root)
        self.max_warm = max_warm
        self._warm: OrderedDict[ModelKey, object] = OrderedDict()
        self.warm_hits = 0
        self.disk_loads = 0
        self.evictions = 0
        self.saves = 0

    def path_for(self, key: ModelKey) -> Path:
        return self.root / key.filename

    def __contains__(self, key: ModelKey) -> bool:
        return key in self._warm or self.path_for(key).exists()

    def keys(self) -> list[ModelKey]:
        """Every key with an archive on disk, sorted by filename."""
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("*.npz")):
            try:
                key = ModelKey.from_filename(path.name)
            except (ValueError, TypeError):
                continue  # foreign npz file in the registry directory
            if not zipfile.is_zipfile(path):
                warnings.warn(
                    f"skipping corrupt registry entry '{path}' (not a valid npz "
                    "archive); re-register the model to repair it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            out.append(key)
        return out

    # ----------------------------------------------------------------- io
    def save(self, key: ModelKey, model) -> Path:
        """Persist *model* under *key* and warm the cache with it.

        The archive is written to a temporary file in the registry
        directory and :func:`os.replace`\\ d into place, so a crash
        mid-save never leaves a torn ``.npz`` under a valid key — readers
        see either the old entry or the new one, atomically.
        """
        meta, arrays = _dump_model(model)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta_blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, meta_json=meta_blob, **arrays)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.saves += 1
        self._remember(key, model)
        return path

    def load(self, key: ModelKey):
        """Deserialise *key* straight from disk (no cache interaction).

        Raises :class:`FileNotFoundError` when the key was never
        registered and :class:`RegistryCorruptError` when an archive
        exists but cannot be parsed back into a model.
        """
        path = self.path_for(key)
        if not path.exists():
            raise FileNotFoundError(
                f"no registered model for {key} at '{path}'; train and save it first"
            )
        try:
            with np.load(path) as archive:
                meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
                return _load_model(meta, archive)
        except (
            zipfile.BadZipFile,
            ValueError,  # includes json.JSONDecodeError and npz parse errors
            KeyError,
            EOFError,
            UnicodeDecodeError,
            TypeError,
        ) as error:
            raise RegistryCorruptError(
                f"corrupt registry entry for {key} at '{path}': {error}"
            ) from error

    def get(self, key: ModelKey):
        """The model for *key*: warm if cached, lazily loaded otherwise."""
        if key in self._warm:
            self._warm.move_to_end(key)
            self.warm_hits += 1
            return self._warm[key]
        model = self.load(key)
        self.disk_loads += 1
        self._remember(key, model)
        return model

    def _remember(self, key: ModelKey, model) -> None:
        self._warm[key] = model
        self._warm.move_to_end(key)
        while len(self._warm) > self.max_warm:
            self._warm.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------ versions
    def provenance_path_for(self, key: ModelKey) -> Path:
        return self.root / f"{key.stem}.provenance.json"

    def versions(self, key: ModelKey) -> list[int]:
        """Sorted on-disk version numbers registered under *key*'s base."""
        base = key.base
        out = []
        pattern = f"{base.stem}__v*.npz"
        if not self.root.is_dir():
            return out
        for path in self.root.glob(pattern):
            try:
                candidate = ModelKey.from_filename(path.name)
            except (ValueError, TypeError):
                continue
            if candidate.version is not None and candidate.base == base:
                out.append(candidate.version)
        return sorted(out)

    def next_version(self, key: ModelKey) -> int:
        """The next unused (monotonically increasing) version for *key*."""
        versions = self.versions(key)
        return versions[-1] + 1 if versions else 1

    def save_version(
        self,
        key: ModelKey,
        model,
        provenance: dict | None = None,
        version: int | None = None,
    ) -> ModelKey:
        """Persist *model* as a new (or explicit) version of *key*.

        Without *version* the next free number is assigned; passing one
        makes the write idempotent — a lifecycle controller re-running a
        deterministic retrain after a crash overwrites the orphaned
        archive with identical content instead of minting a stray
        version.  The *provenance* dict (train window, seed, feature
        set, parent version, ...) is persisted atomically alongside the
        archive as ``<stem>.provenance.json``.  Returns the versioned
        key.
        """
        resolved = self.next_version(key) if version is None else int(version)
        versioned = ModelKey(
            key.target, key.model, key.horizon, key.window, version=resolved
        )
        self.save(versioned, model)
        record = dict(provenance or {})
        record.setdefault("version", resolved)
        record.setdefault("target", key.target)
        record.setdefault("model", key.model)
        record.setdefault("horizon", key.horizon)
        record.setdefault("window", key.window)
        write_json_atomic(self.provenance_path_for(versioned), record)
        return versioned

    def provenance(self, key: ModelKey) -> dict | None:
        """The provenance sidecar for *key*, or None when absent."""
        path = self.provenance_path_for(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as error:
            raise RegistryCorruptError(
                f"corrupt provenance sidecar for {key} at '{path}': {error}"
            ) from error

    def latest(self, key: ModelKey) -> ModelKey | None:
        """The highest-versioned key registered under *key*'s base."""
        versions = self.versions(key)
        if not versions:
            return None
        base = key.base
        return ModelKey(
            base.target, base.model, base.horizon, base.window, version=versions[-1]
        )

    def history(self, key: ModelKey) -> list[tuple[ModelKey, dict | None]]:
        """Every version of *key*'s base with its provenance, ascending."""
        base = key.base
        out: list[tuple[ModelKey, dict | None]] = []
        for version in self.versions(key):
            versioned = ModelKey(
                base.target, base.model, base.horizon, base.window, version=version
            )
            out.append((versioned, self.provenance(versioned)))
        return out

    def evict_all(self) -> None:
        """Drop every warm model (they reload from disk on demand)."""
        self._warm.clear()

    def stats(self) -> dict:
        """Cache statistics snapshot for the telemetry layer."""
        return {
            "warm_models": len(self._warm),
            "max_warm": self.max_warm,
            "warm_hits": self.warm_hits,
            "disk_loads": self.disk_loads,
            "evictions": self.evictions,
            "saves": self.saves,
        }


def train_and_register(
    runner,
    registry: ModelRegistry,
    model_names: tuple[str, ...],
    t_day: int,
    horizons: tuple[int, ...],
    windows: tuple[int, ...],
    overwrite: bool = False,
    n_jobs: int | None = 1,
) -> list[ModelKey]:
    """Train sweep-cell models and persist them into *registry*.

    *runner* is a :class:`repro.core.experiment.SweepRunner`; each
    ``(model, horizon, window)`` combination is trained at day *t_day*
    via :meth:`~repro.core.experiment.SweepRunner.train_cell` and saved
    under ``ModelKey(runner.target, model, horizon, window)``.  Existing
    entries are kept unless *overwrite* is set.  Returns the keys now
    present for the requested grid.  *n_jobs* parallelises the member
    tree fitting of each forest model across processes; the persisted
    archives are identical for any value.
    """
    keys: list[ModelKey] = []
    for model_name in model_names:
        for window in windows:
            for horizon in horizons:
                key = ModelKey(runner.target, model_name, horizon, window)
                if overwrite or key not in registry:
                    model = runner.train_cell(
                        model_name, t_day, horizon, window, n_jobs=n_jobs
                    )
                    registry.save(key, model)
                keys.append(key)
    return keys
