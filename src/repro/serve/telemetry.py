"""Serving-side observability: counters and latency histograms.

The online service needs cheap, dependency-free instrumentation: how
many ticks were ingested, how often the prediction cache hits, and how
long ingest/predict calls take at the median and the tail.  Counters are
plain integers; latencies go into fixed log-spaced bucket histograms
(microseconds to seconds) so percentile estimates cost O(buckets) and
memory stays constant no matter how long the service runs.

Everything is exposed through :meth:`ServeTelemetry.stats`, a plain
nested-dict snapshot that later observability layers (JSON endpoints,
log shippers) can serialise directly.

The gateway (PR 10) adds **gauges** — point-in-time readings such as
DLQ depth or ingest-queue length that can move in both directions and
are never pooled by summing — and exposes counters, gauges, and the
raw histogram buckets through the Prometheus text renderer in
:mod:`repro.gateway.metrics`.

The resilience layer (PR 3) adds a third primitive: a bounded
**structured event log**.  Quarantines, gap fills, degradations, and
recoveries are recorded as plain dicts (``{"event": kind, ...}``) in a
fixed-capacity ring, with a per-kind counter (``events_<kind>``) so the
totals survive after old events rotate out.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["LatencyHistogram", "ServeTelemetry"]


class LatencyHistogram:
    """Log-spaced bucket histogram of durations in seconds.

    Parameters
    ----------
    lo, hi:
        Bounds of the bucketed range; durations outside it land in the
        first/last (overflow) bucket.
    n_buckets:
        Number of geometric bucket boundaries between *lo* and *hi*.

    Quantile estimates return the geometric midpoint of the bucket the
    quantile falls into, so their relative error is bounded by the
    bucket ratio (~16 % with the defaults) — plenty for p50/p99
    monitoring without storing samples.
    """

    def __init__(
        self,
        lo: float = 1e-6,
        hi: float = 30.0,
        n_buckets: int = 64,
        bounds: "np.ndarray | None" = None,
    ) -> None:
        if bounds is not None:
            bounds = np.asarray(bounds, dtype=np.float64)
        else:
            if not 0 < lo < hi:
                raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
            if n_buckets < 2:
                raise ValueError(f"n_buckets must be >= 2, got {n_buckets}")
            bounds = np.geomspace(lo, hi, n_buckets)
        # Monotonicity is validated at construction, not assumed: a
        # non-increasing edge would silently break searchsorted bucketing
        # (and the Prometheus `le` exposition, which requires strictly
        # increasing upper bounds).
        if bounds.ndim != 1 or bounds.size < 2:
            raise ValueError(f"bounds must be a 1-D array of >= 2 edges, got {bounds.shape}")
        if not np.all(bounds > 0) or not np.all(np.isfinite(bounds)):
            raise ValueError("bucket bounds must be positive and finite")
        if not np.all(np.diff(bounds) > 0):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        #: Upper bound of each bucket; the final slot catches overflow.
        self._bounds = bounds
        self._counts = np.zeros(bounds.size + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    @property
    def bucket_bounds(self) -> np.ndarray:
        """Read-only view of the bucket upper bounds (seconds)."""
        view = self._bounds.view()
        view.flags.writeable = False
        return view

    @property
    def bucket_counts(self) -> np.ndarray:
        """Read-only view of the per-bucket counts (last slot = overflow)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def record(self, seconds: float) -> None:
        """Add one duration observation."""
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"duration must be non-negative, got {seconds}")
        self._counts[int(np.searchsorted(self._bounds, seconds))] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        cumulative = np.cumsum(self._counts)
        bucket = int(np.searchsorted(cumulative, rank, side="right"))
        if bucket >= self._bounds.size:
            return self.max
        lo = self._bounds[bucket - 1] if bucket > 0 else 0.0
        hi = self._bounds[bucket]
        midpoint = np.sqrt(lo * hi) if lo > 0 else hi / 2.0
        return float(min(midpoint, self.max))

    def summary(self) -> dict:
        """Snapshot: count, mean, p50, p99, and max (seconds)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "max": self.max,
        }

    def merge_from(self, other: "LatencyHistogram") -> None:
        """Pool *other*'s observations into this histogram.

        Both histograms must share the same bucket boundaries (they do
        when both were built with the defaults).  Bucket counts add
        exactly, so pooled quantile estimates are what a single
        histogram fed both observation streams would report.
        """
        if not np.array_equal(self._bounds, other._bounds):
            raise ValueError(
                "cannot merge histograms with different bucket boundaries"
            )
        self._counts += other._counts
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max


class ServeTelemetry:
    """Named counters and latency histograms for the serving layer.

    Counters and histograms are created lazily on first use, so callers
    just ``inc("ingest_ticks")`` or ``with telemetry.timer("predict"):``
    without pre-registration.
    """

    def __init__(self, max_events: int = 256) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._events: deque[dict] = deque(maxlen=max_events)
        self.events_seen = 0

    # ------------------------------------------------------------- counters
    def inc(self, name: str, amount: int = 1) -> int:
        """Increment counter *name*; returns the new value."""
        value = self._counters.get(name, 0) + amount
        self._counters[name] = value
        return value

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Name-sorted counters filtered to those starting with *prefix*.

        ``counters("events_")`` pulls the per-kind event totals,
        ``counters("worker_")`` the supervisor's restart bookkeeping —
        handy for status lines that report one counter family.
        """
        return {
            name: value
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    # -------------------------------------------------------------- gauges
    def set_gauge(self, name: str, value: float) -> float:
        """Set gauge *name* to a point-in-time *value*; returns it.

        Gauges are instantaneous readings (queue depth, dark-sector
        count, champion version) — unlike counters they can go down,
        and merging them must not sum the same underlying instrument
        twice.
        """
        value = float(value)
        self._gauges[name] = value
        return value

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge *name* (*default* if never set)."""
        return self._gauges.get(name, default)

    def gauges(self) -> dict[str, float]:
        """Name-sorted snapshot of every gauge."""
        return dict(sorted(self._gauges.items()))

    # ------------------------------------------------------------ latencies
    def histogram(self, name: str) -> LatencyHistogram:
        """The histogram registered under *name* (created on first use)."""
        if name not in self._histograms:
            self._histograms[name] = LatencyHistogram()
        return self._histograms[name]

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration into histogram *name*."""
        self.histogram(name).record(seconds)

    def histograms(self) -> dict[str, LatencyHistogram]:
        """Snapshot of the registered histograms by name (shared refs)."""
        return dict(self._histograms)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into histogram *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -------------------------------------------------------------- events
    def event(self, kind: str, **fields) -> dict:
        """Record a structured event; returns the stored record.

        The record is ``{"event": kind, **fields}`` — JSON-serialisable
        by construction as long as the caller passes plain values.  The
        per-kind counter ``events_<kind>`` is bumped alongside, so event
        totals remain exact even after the bounded log rotates.
        """
        record = {"event": kind, **fields}
        self._events.append(record)
        self.events_seen += 1
        self.inc(f"events_{kind}")
        return record

    def events(self, kind: str | None = None) -> list[dict]:
        """Buffered events, newest last, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [record for record in self._events if record["event"] == kind]

    # --------------------------------------------------------------- merge
    def merge(self, others: "Iterable[ServeTelemetry]") -> "ServeTelemetry":
        """A new telemetry combining this one with *others*.

        Counters sum, latency histograms pool bucket-by-bucket, and
        ``events_seen`` adds — the fleet coordinator uses this to fold
        per-shard telemetries into one network-wide snapshot.  Neither
        operand is mutated, and the numeric snapshot (:meth:`stats`) is
        **commutative**: ``a.merge([b])`` and ``b.merge([a])`` report
        identical counters, latency summaries, and event totals.  Only
        the *order* of the buffered event log depends on operand order
        (events concatenate self-first, bounded by this instance's
        capacity).
        """
        merged = ServeTelemetry(max_events=self._events.maxlen or 1)
        sources = [self, *others]
        for source in sources:
            for name, value in source._counters.items():
                merged._counters[name] = merged._counters.get(name, 0) + value
            # Gauges are point-in-time instrument readings, not flows:
            # summing a gauge that several sources observed (a shared
            # clock, a champion version) would double-count it.  The
            # first operand holding a gauge wins — per-source values
            # that *should* add across disjoint shards belong in the
            # per-shard stats tables, not in the pooled gauge set.
            for name, value in source._gauges.items():
                merged._gauges.setdefault(name, value)
            for name, histogram in source._histograms.items():
                merged.histogram(name).merge_from(histogram)
            merged._events.extend(source._events)
            merged.events_seen += source.events_seen
        return merged

    # ------------------------------------------------------------- snapshot
    def stats(self) -> dict:
        """Plain-dict snapshot of every counter and histogram summary."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "latency": {
                name: histogram.summary()
                for name, histogram in self._histograms.items()
            },
            "events": {
                "seen": self.events_seen,
                "buffered": len(self._events),
            },
        }
