"""Online serving layer: incremental ingest, model registry, prediction cache.

This package turns the offline reproduction pipeline into a long-running
forecasting service:

* :mod:`repro.serve.ingest` — hourly KPI ingestion into fixed-capacity
  ring buffers with incrementally maintained scores and labels,
  bitwise-equal to the batch pipeline;
* :mod:`repro.serve.registry` — on-disk persistence and warm-cache
  loading of trained forecasting models;
* :mod:`repro.serve.engine` — batched predictions from ring state with
  per-day caching;
* :mod:`repro.serve.service` — the alerting loop and JSONL protocol
  behind ``hotspot-repro serve``;
* :mod:`repro.serve.telemetry` — counters and latency histograms.
"""

from repro.serve.engine import PredictionEngine
from repro.serve.ingest import IngestTick, StreamIngestor, default_calendar_row
from repro.serve.registry import (
    ModelKey,
    ModelRegistry,
    RegistryCorruptError,
    train_and_register,
)
from repro.serve.service import HotSpotService, ServeConfig
from repro.serve.telemetry import LatencyHistogram, ServeTelemetry

__all__ = [
    "HotSpotService",
    "IngestTick",
    "LatencyHistogram",
    "ModelKey",
    "ModelRegistry",
    "PredictionEngine",
    "RegistryCorruptError",
    "ServeConfig",
    "ServeTelemetry",
    "StreamIngestor",
    "default_calendar_row",
    "train_and_register",
]
