"""Incremental hourly KPI ingestion over fixed-capacity ring buffers.

:class:`StreamIngestor` is the online counterpart of the batch scoring
pipeline: KPIs arrive one hour at a time, per-sector rolling state lives
in ring buffers bounded by ``w_max`` days, and every score and label the
batch pipeline computes is maintained incrementally.

**Parity contract.**  Replaying a dataset hour-by-hour reproduces the
batch pipeline *bitwise*:

* hourly scores equal :func:`repro.core.scoring.hourly_score` because
  the per-tick computation applies the identical thresholding/weighted
  sum over the same contiguous KPI axis;
* daily/weekly scores equal :func:`repro.core.scoring.integrate_score`
  because each completed period is averaged from a contiguous 24- or
  168-element accumulator — the same reduction the batch reshape-mean
  performs;
* the trailing daily/weekly feature channels equal
  :func:`repro.core.scoring.trailing_mean` because the ingestor keeps a
  running cumulative sum (floating-point accumulation order identical to
  ``np.cumsum``) and forms the same ``(cs[j] - cs[j - w]) / w``
  differences;
* consequently :meth:`StreamIngestor.feature_window` is bitwise equal to
  ``build_feature_tensor(...).window(t_day, w)`` on the same data.

The ring holds raw KPI values, missing masks, calendar rows, hourly
scores/labels, and the precomputed trailing channels for the last
``capacity_hours`` hours.  Daily and weekly score/label *histories* are
kept in full (they grow by one ``(n,)`` column per day/week — a few KB
per day even at production sector counts) because the baseline models
and the alerting layer address arbitrary past days.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.features import assemble_window
from repro.core.scoring import ScoreConfig
from repro.data.dataset import Dataset
from repro.data.tensor import HOURS_PER_DAY, HOURS_PER_WEEK

__all__ = ["IngestTick", "StreamIngestor", "default_calendar_row"]


def default_calendar_row(
    hour: int,
    start_weekday: int = 0,
    start_hour: int = 0,
    start_day_of_month: int = 1,
) -> np.ndarray:
    """Best-effort 5-element calendar row for a global *hour* index.

    Derives (hour-of-day, day-of-week, a 31-day day-of-month cycle,
    weekend flag, holiday = 0) from the given time-axis anchors — the
    row :meth:`StreamIngestor.ingest_hour` synthesises when the caller
    supplies none.  Exposed as a module function so layers that own no
    ingestor (the fleet coordinator's gap-fill synthesis) derive the
    identical row.
    """
    hour_of_day = (hour + start_hour) % HOURS_PER_DAY
    day = (hour + start_hour) // HOURS_PER_DAY
    day_of_week = (day + start_weekday) % 7
    day_of_month = (day + start_day_of_month - 1) % 31 + 1
    return np.array(
        [
            float(hour_of_day),
            float(day_of_week),
            float(day_of_month),
            1.0 if day_of_week >= 5 else 0.0,
            0.0,
        ]
    )


@dataclass(frozen=True)
class IngestTick:
    """Outcome of one hourly ingest step.

    Attributes
    ----------
    hour:
        Global zero-based hour index of the ingested sample.
    day:
        Day index this hour belongs to.
    day_completed, week_completed:
        True when this hour closed a 24 h / 168 h period (daily/weekly
        scores and labels were appended to the histories).
    t_day:
        Index of the last *complete* day after this tick (-1 before the
        first full day) — the day forecasts can be made "at".
    """

    hour: int
    day: int
    day_completed: bool
    week_completed: bool
    t_day: int


class _History:
    """Column-appendable ``(n, m)`` matrix with amortised doubling."""

    def __init__(self, n_rows: int, dtype=np.float64, capacity: int = 64) -> None:
        self._data = np.zeros((n_rows, capacity), dtype=dtype)
        self.n_cols = 0

    def append(self, column: np.ndarray) -> None:
        if self.n_cols == self._data.shape[1]:
            grown = np.zeros(
                (self._data.shape[0], 2 * self._data.shape[1]), dtype=self._data.dtype
            )
            grown[:, : self.n_cols] = self._data[:, : self.n_cols]
            self._data = grown
        self._data[:, self.n_cols] = column
        self.n_cols += 1

    @property
    def view(self) -> np.ndarray:
        """Read-only-by-convention view of the appended columns."""
        return self._data[:, : self.n_cols]

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "_History":
        """A history whose appended columns equal *matrix* exactly."""
        history = cls(matrix.shape[0], dtype=matrix.dtype,
                      capacity=max(64, matrix.shape[1]))
        history._data[:, : matrix.shape[1]] = matrix
        history.n_cols = matrix.shape[1]
        return history


class StreamIngestor:
    """Hourly ingestion with per-sector rolling KPI state.

    Parameters
    ----------
    n_sectors:
        Number of sectors in the network.
    n_kpis:
        KPI channels per sector; defaults to (and must match) the score
        configuration's channel count.
    score_config:
        Weights/thresholds used for incremental scoring; defaults match
        :func:`repro.core.scoring.attach_scores`.
    w_max:
        Largest forecast window (days) the ring must be able to serve.
    capacity_hours:
        Ring capacity override; defaults to ``w_max`` days, raised to at
        least ``168 + 24`` hours so the weekly trailing mean always finds
        its lookback sample before the ring wraps.
    start_weekday, start_hour, start_day_of_month:
        Time-axis anchors used only to derive default calendar rows when
        :meth:`ingest_hour` is called without one.
    """

    def __init__(
        self,
        n_sectors: int,
        n_kpis: int | None = None,
        score_config: ScoreConfig | None = None,
        w_max: int = 21,
        capacity_hours: int | None = None,
        start_weekday: int = 0,
        start_hour: int = 0,
        start_day_of_month: int = 1,
    ) -> None:
        if n_sectors < 1:
            raise ValueError(f"n_sectors must be >= 1, got {n_sectors}")
        if w_max < 1:
            raise ValueError(f"w_max must be >= 1, got {w_max}")
        config = score_config or ScoreConfig()
        if n_kpis is None:
            n_kpis = config.n_kpis
        if n_kpis != config.n_kpis:
            raise ValueError(
                f"score config covers {config.n_kpis} KPIs, ingestor asked for {n_kpis}"
            )
        minimum = HOURS_PER_WEEK + HOURS_PER_DAY
        capacity = capacity_hours or max(w_max * HOURS_PER_DAY, minimum)
        if capacity < minimum:
            raise ValueError(
                f"capacity_hours must be >= {minimum} (one week of trailing-mean "
                f"lookback plus one day), got {capacity}"
            )
        self.config = config
        self.w_max = w_max
        self.capacity = int(capacity)
        self.start_weekday = start_weekday
        self.start_hour = start_hour
        self.start_day_of_month = start_day_of_month
        self._weights = np.asarray(config.weights, dtype=np.float64)
        self._thresholds = np.asarray(config.thresholds, dtype=np.float64)
        self._weight_sum = config.weight_sum
        self._threshold = config.hotspot_threshold

        n, cap, l = n_sectors, self.capacity, n_kpis
        # Ring-buffered hourly state (slot = hour % capacity).
        self.values = np.full((n, cap, l), np.nan)
        self.missing = np.ones((n, cap, l), dtype=bool)
        self.calendar = np.zeros((cap, 5))
        self.score_hourly = np.zeros((n, cap))
        self.labels_hourly = np.zeros((n, cap), dtype=np.int8)
        self.trail_daily = np.zeros((n, cap))
        self.trail_weekly = np.zeros((n, cap))
        self.trail_label = np.zeros((n, cap))
        self._cumsum = np.zeros((n, cap))
        self._running_total = np.zeros(n)
        # Contiguous per-period accumulators (see parity contract).
        self._day_scores = np.zeros((n, HOURS_PER_DAY))
        self._week_scores = np.zeros((n, HOURS_PER_WEEK))
        # Full daily/weekly histories.
        self._score_daily = _History(n)
        self._labels_daily = _History(n, dtype=np.int8)
        self._score_weekly = _History(n)
        self._labels_weekly = _History(n, dtype=np.int8)
        self.hours_seen = 0

    # ------------------------------------------------------------- shape
    @property
    def n_sectors(self) -> int:
        return self.values.shape[0]

    @property
    def n_kpis(self) -> int:
        return self.values.shape[2]

    @property
    def last_complete_day(self) -> int:
        """Index of the last fully ingested day (-1 before the first)."""
        return self.hours_seen // HOURS_PER_DAY - 1

    @property
    def score_daily(self) -> np.ndarray:
        """Daily scores ``S^d`` so far, shape ``(n, days_completed)``."""
        return self._score_daily.view

    @property
    def labels_daily(self) -> np.ndarray:
        """Daily labels ``Y^d`` so far, shape ``(n, days_completed)``."""
        return self._labels_daily.view

    @property
    def score_weekly(self) -> np.ndarray:
        """Weekly scores ``S^w`` so far, shape ``(n, weeks_completed)``."""
        return self._score_weekly.view

    @property
    def labels_weekly(self) -> np.ndarray:
        """Weekly labels ``Y^w`` so far, shape ``(n, weeks_completed)``."""
        return self._labels_weekly.view

    # ------------------------------------------------------------- ingest
    def ingest_hour(
        self,
        values: np.ndarray,
        missing: np.ndarray | None = None,
        calendar_row: np.ndarray | None = None,
    ) -> IngestTick:
        """Ingest one hour of KPIs for every sector.

        Parameters
        ----------
        values:
            Shape ``(n_sectors, n_kpis)`` hourly measurements.
        missing:
            Boolean mask, same shape; defaults to the NaN positions of
            *values*.  Missing entries cannot trip score thresholds
            (matching :func:`repro.core.scoring.hourly_score`), but a
            forecaster window containing them is rejected — impute
            upstream, as in the batch pipeline.
        calendar_row:
            The 5-element enriched calendar row for this hour.  When
            omitted, a default row is derived from the configured time
            axis (hour-of-day, day-of-week, a 31-day day-of-month cycle,
            weekend flag, holiday = 0); for bitwise feature parity with
            a specific dataset, pass its calendar rows.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_sectors, self.n_kpis):
            raise ValueError(
                f"values must be ({self.n_sectors}, {self.n_kpis}), got {values.shape}"
            )
        if missing is None:
            missing = np.isnan(values)
        missing = np.asarray(missing, dtype=bool)
        if missing.shape != values.shape:
            raise ValueError(
                f"missing mask shape {missing.shape} != values shape {values.shape}"
            )
        hour = self.hours_seen
        slot = hour % self.capacity

        # Eq. 1, identical operations to the batch hourly_score.
        tripped = values > self._thresholds[None, :]
        tripped &= ~missing
        score = (tripped * self._weights[None, :]).sum(axis=1) / self._weight_sum

        self.values[:, slot, :] = values
        self.missing[:, slot, :] = missing
        self.calendar[slot] = (
            self._default_calendar_row(hour) if calendar_row is None else calendar_row
        )
        self.score_hourly[:, slot] = score
        self.labels_hourly[:, slot] = (score > self._threshold).astype(np.int8)

        # Running cumulative sum: same sequential accumulation order as
        # np.cumsum over the full history, so the Eq. 3 trailing means
        # below match trailing_mean() bitwise.
        self._running_total += score
        self._cumsum[:, slot] = self._running_total
        self.trail_daily[:, slot] = self._trailing(hour, HOURS_PER_DAY)
        self.trail_weekly[:, slot] = self._trailing(hour, HOURS_PER_WEEK)
        self.trail_label[:, slot] = (
            self.trail_daily[:, slot] > self._threshold
        ).astype(np.float64)

        self._day_scores[:, hour % HOURS_PER_DAY] = score
        self._week_scores[:, hour % HOURS_PER_WEEK] = score
        self.hours_seen += 1

        day_completed = self.hours_seen % HOURS_PER_DAY == 0
        week_completed = self.hours_seen % HOURS_PER_WEEK == 0
        if day_completed:
            s_day = self._day_scores.mean(axis=1)
            self._score_daily.append(s_day)
            self._labels_daily.append((s_day > self._threshold).astype(np.int8))
        if week_completed:
            s_week = self._week_scores.mean(axis=1)
            self._score_weekly.append(s_week)
            self._labels_weekly.append((s_week > self._threshold).astype(np.int8))
        return IngestTick(
            hour=hour,
            day=hour // HOURS_PER_DAY,
            day_completed=day_completed,
            week_completed=week_completed,
            t_day=self.last_complete_day,
        )

    def _trailing(self, hour: int, window: int) -> np.ndarray:
        """Trailing mean of the hourly score ending at *hour* (Eq. 3)."""
        if hour >= window:
            lookback = self._cumsum[:, (hour - window) % self.capacity]
            return (self._running_total - lookback) / window
        return self._running_total / (hour + 1)

    def _default_calendar_row(self, hour: int) -> np.ndarray:
        """Best-effort calendar row when the caller supplies none."""
        return default_calendar_row(
            hour, self.start_weekday, self.start_hour, self.start_day_of_month
        )

    def replay(
        self,
        dataset: Dataset,
        start_hour: int = 0,
        end_hour: int | None = None,
    ) -> Iterator[IngestTick]:
        """Feed a dataset's hours through :meth:`ingest_hour`, yielding ticks."""
        kpis = dataset.kpis
        if kpis.n_sectors != self.n_sectors or kpis.n_kpis != self.n_kpis:
            raise ValueError(
                f"dataset shape ({kpis.n_sectors} sectors, {kpis.n_kpis} KPIs) does "
                f"not match ingestor ({self.n_sectors}, {self.n_kpis})"
            )
        end = kpis.n_hours if end_hour is None else min(end_hour, kpis.n_hours)
        for hour in range(start_hour, end):
            yield self.ingest_hour(
                kpis.values[:, hour, :],
                kpis.missing[:, hour, :],
                dataset.calendar[hour],
            )

    @classmethod
    def for_dataset(
        cls,
        dataset: Dataset,
        score_config: ScoreConfig | None = None,
        w_max: int = 21,
    ) -> "StreamIngestor":
        """An ingestor shaped and time-anchored for *dataset*."""
        axis = dataset.time_axis
        return cls(
            n_sectors=dataset.n_sectors,
            n_kpis=dataset.kpis.n_kpis,
            score_config=score_config,
            w_max=w_max,
            start_weekday=axis.start_weekday,
            start_hour=axis.start_hour,
        )

    # ------------------------------------------------------------- windows
    def _ring_slots(self, lo_hour: int, hi_hour: int) -> np.ndarray:
        """Ring slots for global hours ``[lo_hour, hi_hour)``, validated."""
        if not 0 <= lo_hour < hi_hour:
            raise ValueError(f"invalid hour range [{lo_hour}, {hi_hour})")
        if hi_hour > self.hours_seen:
            raise ValueError(
                f"hour range [{lo_hour}, {hi_hour}) not fully ingested yet "
                f"({self.hours_seen} hours seen)"
            )
        if lo_hour < self.hours_seen - self.capacity:
            raise ValueError(
                f"hour {lo_hour} already evicted from the {self.capacity}-hour ring; "
                "increase w_max/capacity_hours"
            )
        return np.arange(lo_hour, hi_hour) % self.capacity

    def hourly_window(self, lo_hour: int, hi_hour: int) -> dict[str, np.ndarray]:
        """Raw ring contents for hours ``[lo_hour, hi_hour)`` (testing/debug)."""
        slots = self._ring_slots(lo_hour, hi_hour)
        return {
            "values": self.values[:, slots, :],
            "missing": self.missing[:, slots, :],
            "calendar": self.calendar[slots],
            "score_hourly": self.score_hourly[:, slots],
            "labels_hourly": self.labels_hourly[:, slots],
            "trail_daily": self.trail_daily[:, slots],
            "trail_weekly": self.trail_weekly[:, slots],
        }

    def feature_window(self, t_day: int, window: int) -> np.ndarray:
        """The Eq. 5 input block for a forecast made at day *t_day*.

        Bitwise equal to ``build_feature_tensor(dataset).window(t_day,
        window)`` when the same hours were replayed with the dataset's
        calendar rows.  Shape ``(n, 24 * window, n_kpis + 9)``.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        lo = HOURS_PER_DAY * (t_day - window + 1)
        hi = HOURS_PER_DAY * (t_day + 1)
        if lo < 0:
            raise ValueError(
                f"window of {window} days does not fit before day {t_day}"
            )
        slots = self._ring_slots(lo, hi)
        if self.missing[:, slots, :].any():
            raise ValueError(
                "forecast window contains missing KPI values; impute upstream "
                "(the batch pipeline rejects incomplete tensors the same way)"
            )
        return assemble_window(
            self.values[:, slots, :],
            self.calendar[slots],
            self.score_hourly[:, slots],
            self.trail_daily[:, slots],
            self.trail_weekly[:, slots],
            self.trail_label[:, slots],
        )

    # ------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Complete snapshot of the ingestor's mutable state.

        The returned mapping has two entries: ``"meta"`` (JSON-able
        construction parameters and the hour clock) and ``"arrays"``
        (copies of every numpy buffer, including ring slots beyond
        ``hours_seen``).  :meth:`from_state` rebuilds an ingestor that
        continues *bitwise-identically* to this one — the basis of the
        :mod:`repro.resilience.checkpoint` crash-recovery contract.
        """
        meta = {
            "hours_seen": self.hours_seen,
            "w_max": self.w_max,
            "capacity": self.capacity,
            "start_weekday": self.start_weekday,
            "start_hour": self.start_hour,
            "start_day_of_month": self.start_day_of_month,
            "weights": list(self.config.weights),
            "thresholds": list(self.config.thresholds),
            "hotspot_threshold": self.config.hotspot_threshold,
        }
        arrays = {
            "values": self.values.copy(),
            "missing": self.missing.copy(),
            "calendar": self.calendar.copy(),
            "score_hourly": self.score_hourly.copy(),
            "labels_hourly": self.labels_hourly.copy(),
            "trail_daily": self.trail_daily.copy(),
            "trail_weekly": self.trail_weekly.copy(),
            "trail_label": self.trail_label.copy(),
            "cumsum": self._cumsum.copy(),
            "running_total": self._running_total.copy(),
            "day_scores": self._day_scores.copy(),
            "week_scores": self._week_scores.copy(),
            "score_daily": self._score_daily.view.copy(),
            "labels_daily": self._labels_daily.view.copy(),
            "score_weekly": self._score_weekly.view.copy(),
            "labels_weekly": self._labels_weekly.view.copy(),
        }
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def from_state(cls, state: dict) -> "StreamIngestor":
        """Rebuild an ingestor from a :meth:`state_dict` snapshot."""
        meta, arrays = state["meta"], state["arrays"]
        config = ScoreConfig(
            weights=tuple(float(w) for w in meta["weights"]),
            thresholds=tuple(float(t) for t in meta["thresholds"]),
            hotspot_threshold=float(meta["hotspot_threshold"]),
        )
        ingestor = cls(
            n_sectors=int(arrays["values"].shape[0]),
            n_kpis=int(arrays["values"].shape[2]),
            score_config=config,
            w_max=int(meta["w_max"]),
            capacity_hours=int(meta["capacity"]),
            start_weekday=int(meta["start_weekday"]),
            start_hour=int(meta["start_hour"]),
            start_day_of_month=int(meta["start_day_of_month"]),
        )
        for attr, key in (
            ("values", "values"),
            ("missing", "missing"),
            ("calendar", "calendar"),
            ("score_hourly", "score_hourly"),
            ("labels_hourly", "labels_hourly"),
            ("trail_daily", "trail_daily"),
            ("trail_weekly", "trail_weekly"),
            ("trail_label", "trail_label"),
            ("_cumsum", "cumsum"),
            ("_running_total", "running_total"),
            ("_day_scores", "day_scores"),
            ("_week_scores", "week_scores"),
        ):
            getattr(ingestor, attr)[...] = arrays[key]
        ingestor._score_daily = _History.from_matrix(
            np.asarray(arrays["score_daily"], dtype=np.float64)
        )
        ingestor._labels_daily = _History.from_matrix(
            np.asarray(arrays["labels_daily"], dtype=np.int8)
        )
        ingestor._score_weekly = _History.from_matrix(
            np.asarray(arrays["score_weekly"], dtype=np.float64)
        )
        ingestor._labels_weekly = _History.from_matrix(
            np.asarray(arrays["labels_weekly"], dtype=np.int8)
        )
        ingestor.hours_seen = int(meta["hours_seen"])
        return ingestor
