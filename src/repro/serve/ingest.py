"""Incremental hourly KPI ingestion over fixed-capacity ring buffers.

:class:`StreamIngestor` is the online counterpart of the batch scoring
pipeline: KPIs arrive one hour at a time, per-sector rolling state lives
in ring buffers bounded by ``w_max`` days, and every score and label the
batch pipeline computes is maintained incrementally.

**Parity contract.**  Replaying a dataset hour-by-hour reproduces the
batch pipeline *bitwise*:

* hourly scores equal :func:`repro.core.scoring.hourly_score` because
  the per-tick computation applies the identical thresholding/weighted
  sum over the same contiguous KPI axis;
* daily/weekly scores equal :func:`repro.core.scoring.integrate_score`
  because each completed period is averaged from a contiguous 24- or
  168-element accumulator — the same reduction the batch reshape-mean
  performs;
* the trailing daily/weekly feature channels equal
  :func:`repro.core.scoring.trailing_mean` because the ingestor keeps a
  running cumulative sum (floating-point accumulation order identical to
  ``np.cumsum``) and forms the same ``(cs[j] - cs[j - w]) / w``
  differences;
* consequently :meth:`StreamIngestor.feature_window` is bitwise equal to
  ``build_feature_tensor(...).window(t_day, w)`` on the same data.

The ring holds raw KPI values, missing masks, calendar rows, hourly
scores/labels, and the precomputed trailing channels for the last
``capacity_hours`` hours.  Daily and weekly score/label *histories* are
kept in full (they grow by one ``(n,)`` column per day/week — a few KB
per day even at production sector counts) because the baseline models
and the alerting layer address arbitrary past days.

**Columnar micro-batches.**  :meth:`StreamIngestor.ingest_block`
ingests a contiguous ``(n_sectors, n_hours, n_kpis)`` block in a
handful of array operations — Eq. 1 scoring over the whole block, one
``np.cumsum`` extending the running total (the same left-to-right
accumulation order as the per-hour path, see the parity contract),
gathered Eq. 3 trailing means, and per-day-segment accumulator writes —
and is *bitwise identical* to calling :meth:`~StreamIngestor.ingest_hour`
once per hour.  ``ingest_hour`` is in fact implemented as the
block-size-1 case.  The ingestor also maintains a persistent Eq. 5
feature ring (the assembled channel columns per slot, written
incrementally) so :meth:`~StreamIngestor.feature_window` is a single
gather instead of a six-array concatenation per forecast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.features import assemble_window
from repro.core.scoring import ScoreConfig
from repro.data.dataset import Dataset
from repro.data.tensor import HOURS_PER_DAY, HOURS_PER_WEEK

__all__ = ["IngestTick", "StreamIngestor", "default_calendar_row"]


def default_calendar_row(
    hour: int,
    start_weekday: int = 0,
    start_hour: int = 0,
    start_day_of_month: int = 1,
) -> np.ndarray:
    """Best-effort 5-element calendar row for a global *hour* index.

    Derives (hour-of-day, day-of-week, a 31-day day-of-month cycle,
    weekend flag, holiday = 0) from the given time-axis anchors — the
    row :meth:`StreamIngestor.ingest_hour` synthesises when the caller
    supplies none.  Exposed as a module function so layers that own no
    ingestor (the fleet coordinator's gap-fill synthesis) derive the
    identical row.
    """
    hour_of_day = (hour + start_hour) % HOURS_PER_DAY
    day = (hour + start_hour) // HOURS_PER_DAY
    day_of_week = (day + start_weekday) % 7
    day_of_month = (day + start_day_of_month - 1) % 31 + 1
    return np.array(
        [
            float(hour_of_day),
            float(day_of_week),
            float(day_of_month),
            1.0 if day_of_week >= 5 else 0.0,
            0.0,
        ]
    )


@dataclass(frozen=True)
class IngestTick:
    """Outcome of one hourly ingest step.

    Attributes
    ----------
    hour:
        Global zero-based hour index of the ingested sample.
    day:
        Day index this hour belongs to.
    day_completed, week_completed:
        True when this hour closed a 24 h / 168 h period (daily/weekly
        scores and labels were appended to the histories).
    t_day:
        Index of the last *complete* day after this tick (-1 before the
        first full day) — the day forecasts can be made "at".
    """

    hour: int
    day: int
    day_completed: bool
    week_completed: bool
    t_day: int


class _History:
    """Column-appendable ``(n, m)`` matrix with amortised doubling."""

    def __init__(self, n_rows: int, dtype=np.float64, capacity: int = 64) -> None:
        self._data = np.zeros((n_rows, capacity), dtype=dtype)
        self.n_cols = 0

    def append(self, column: np.ndarray) -> None:
        if self.n_cols == self._data.shape[1]:
            grown = np.zeros(
                (self._data.shape[0], 2 * self._data.shape[1]), dtype=self._data.dtype
            )
            grown[:, : self.n_cols] = self._data[:, : self.n_cols]
            self._data = grown
        self._data[:, self.n_cols] = column
        self.n_cols += 1

    @property
    def view(self) -> np.ndarray:
        """Read-only-by-convention view of the appended columns."""
        return self._data[:, : self.n_cols]

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "_History":
        """A history whose appended columns equal *matrix* exactly."""
        history = cls(matrix.shape[0], dtype=matrix.dtype,
                      capacity=max(64, matrix.shape[1]))
        history._data[:, : matrix.shape[1]] = matrix
        history.n_cols = matrix.shape[1]
        return history


class StreamIngestor:
    """Hourly ingestion with per-sector rolling KPI state.

    Parameters
    ----------
    n_sectors:
        Number of sectors in the network.
    n_kpis:
        KPI channels per sector; defaults to (and must match) the score
        configuration's channel count.
    score_config:
        Weights/thresholds used for incremental scoring; defaults match
        :func:`repro.core.scoring.attach_scores`.
    w_max:
        Largest forecast window (days) the ring must be able to serve.
    capacity_hours:
        Ring capacity override; defaults to ``w_max`` days, raised to at
        least ``168 + 24`` hours so the weekly trailing mean always finds
        its lookback sample before the ring wraps.
    start_weekday, start_hour, start_day_of_month:
        Time-axis anchors used only to derive default calendar rows when
        :meth:`ingest_hour` is called without one.
    """

    def __init__(
        self,
        n_sectors: int,
        n_kpis: int | None = None,
        score_config: ScoreConfig | None = None,
        w_max: int = 21,
        capacity_hours: int | None = None,
        start_weekday: int = 0,
        start_hour: int = 0,
        start_day_of_month: int = 1,
    ) -> None:
        if n_sectors < 1:
            raise ValueError(f"n_sectors must be >= 1, got {n_sectors}")
        if w_max < 1:
            raise ValueError(f"w_max must be >= 1, got {w_max}")
        config = score_config or ScoreConfig()
        if n_kpis is None:
            n_kpis = config.n_kpis
        if n_kpis != config.n_kpis:
            raise ValueError(
                f"score config covers {config.n_kpis} KPIs, ingestor asked for {n_kpis}"
            )
        minimum = HOURS_PER_WEEK + HOURS_PER_DAY
        capacity = capacity_hours or max(w_max * HOURS_PER_DAY, minimum)
        if capacity < minimum:
            raise ValueError(
                f"capacity_hours must be >= {minimum} (one week of trailing-mean "
                f"lookback plus one day), got {capacity}"
            )
        self.config = config
        self.w_max = w_max
        self.capacity = int(capacity)
        self.start_weekday = start_weekday
        self.start_hour = start_hour
        self.start_day_of_month = start_day_of_month
        self._weights = np.asarray(config.weights, dtype=np.float64)
        self._thresholds = np.asarray(config.thresholds, dtype=np.float64)
        self._weight_sum = config.weight_sum
        self._threshold = config.hotspot_threshold

        n, cap, l = n_sectors, self.capacity, n_kpis
        # Ring-buffered hourly state (slot = hour % capacity).
        self.values = np.full((n, cap, l), np.nan)
        self.missing = np.ones((n, cap, l), dtype=bool)
        self.calendar = np.zeros((cap, 5))
        self.score_hourly = np.zeros((n, cap))
        self.labels_hourly = np.zeros((n, cap), dtype=np.int8)
        self.trail_daily = np.zeros((n, cap))
        self.trail_weekly = np.zeros((n, cap))
        self.trail_label = np.zeros((n, cap))
        self._cumsum = np.zeros((n, cap))
        self._running_total = np.zeros(n)
        # Persistent Eq. 5 feature ring: the assembled channel columns
        # for every slot (KPIs | calendar | S^h | S^d | S^w | Y^d), so
        # feature_window() gathers instead of concatenating.  Derived
        # state — rebuilt from the component rings on restore, never
        # part of state_dict().
        self._features = np.zeros((n, cap, l + 9))
        # Contiguous per-period accumulators (see parity contract).
        self._day_scores = np.zeros((n, HOURS_PER_DAY))
        self._week_scores = np.zeros((n, HOURS_PER_WEEK))
        # Full daily/weekly histories.
        self._score_daily = _History(n)
        self._labels_daily = _History(n, dtype=np.int8)
        self._score_weekly = _History(n)
        self._labels_weekly = _History(n, dtype=np.int8)
        self.hours_seen = 0

    # ------------------------------------------------------------- shape
    @property
    def n_sectors(self) -> int:
        return self.values.shape[0]

    @property
    def n_kpis(self) -> int:
        return self.values.shape[2]

    @property
    def last_complete_day(self) -> int:
        """Index of the last fully ingested day (-1 before the first)."""
        return self.hours_seen // HOURS_PER_DAY - 1

    @property
    def score_daily(self) -> np.ndarray:
        """Daily scores ``S^d`` so far, shape ``(n, days_completed)``."""
        return self._score_daily.view

    @property
    def labels_daily(self) -> np.ndarray:
        """Daily labels ``Y^d`` so far, shape ``(n, days_completed)``."""
        return self._labels_daily.view

    @property
    def score_weekly(self) -> np.ndarray:
        """Weekly scores ``S^w`` so far, shape ``(n, weeks_completed)``."""
        return self._score_weekly.view

    @property
    def labels_weekly(self) -> np.ndarray:
        """Weekly labels ``Y^w`` so far, shape ``(n, weeks_completed)``."""
        return self._labels_weekly.view

    # ------------------------------------------------------------- ingest
    def ingest_hour(
        self,
        values: np.ndarray,
        missing: np.ndarray | None = None,
        calendar_row: np.ndarray | None = None,
    ) -> IngestTick:
        """Ingest one hour of KPIs for every sector.

        Parameters
        ----------
        values:
            Shape ``(n_sectors, n_kpis)`` hourly measurements.
        missing:
            Boolean mask, same shape; defaults to the NaN positions of
            *values*.  Missing entries cannot trip score thresholds
            (matching :func:`repro.core.scoring.hourly_score`), but a
            forecaster window containing them is rejected — impute
            upstream, as in the batch pipeline.
        calendar_row:
            The 5-element enriched calendar row for this hour.  When
            omitted, a default row is derived from the configured time
            axis (hour-of-day, day-of-week, a 31-day day-of-month cycle,
            weekend flag, holiday = 0); for bitwise feature parity with
            a specific dataset, pass its calendar rows.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_sectors, self.n_kpis):
            raise ValueError(
                f"values must be ({self.n_sectors}, {self.n_kpis}), got {values.shape}"
            )
        if missing is not None:
            missing = np.asarray(missing, dtype=bool)
            if missing.shape != values.shape:
                raise ValueError(
                    f"missing mask shape {missing.shape} != values shape {values.shape}"
                )
            missing = missing[:, None, :]
        rows = None
        if calendar_row is not None:
            rows = np.asarray(calendar_row, dtype=np.float64)[None, :]
        return self.ingest_block(values[:, None, :], missing, rows)[0]

    def ingest_block(
        self,
        values: np.ndarray,
        missing: np.ndarray | None = None,
        calendar_rows: np.ndarray | None = None,
    ) -> list[IngestTick]:
        """Ingest a contiguous block of hours for every sector at once.

        The columnar micro-batch counterpart of :meth:`ingest_hour`:
        the resulting ingestor state — every ring buffer, accumulator,
        history and the running cumulative sum — is **bitwise
        identical** to calling ``ingest_hour`` once per block column,
        but the per-hour Python overhead is paid once per block.

        Parameters
        ----------
        values:
            Shape ``(n_sectors, n_hours, n_kpis)`` hourly measurements
            for the next ``n_hours`` consecutive hours.
        missing:
            Boolean mask, same shape; defaults to the NaN positions.
        calendar_rows:
            Shape ``(n_hours, 5)`` enriched calendar rows; derived from
            the configured time axis when omitted.

        Returns the per-hour :class:`IngestTick` outcomes, in order.
        """
        values = np.asarray(values, dtype=np.float64)
        if (
            values.ndim != 3
            or values.shape[0] != self.n_sectors
            or values.shape[2] != self.n_kpis
        ):
            raise ValueError(
                f"values must be ({self.n_sectors}, n_hours, {self.n_kpis}), "
                f"got {values.shape}"
            )
        n_hours = values.shape[1]
        if n_hours == 0:
            return []
        if missing is None:
            missing = np.isnan(values)
        missing = np.asarray(missing, dtype=bool)
        if missing.shape != values.shape:
            raise ValueError(
                f"missing mask shape {missing.shape} != values shape {values.shape}"
            )
        if calendar_rows is not None:
            calendar_rows = np.asarray(calendar_rows, dtype=np.float64)
            if calendar_rows.shape != (n_hours, 5):
                raise ValueError(
                    f"calendar_rows must be ({n_hours}, 5), got {calendar_rows.shape}"
                )

        # Chunk so no ring write of this block lands on a cumsum slot a
        # later hour of the same chunk still needs for its weekly
        # trailing lookback (capacity >= 168 + 24 guarantees progress).
        ticks: list[IngestTick] = []
        chunk = self.capacity - HOURS_PER_WEEK
        for start in range(0, n_hours, chunk):
            stop = min(start + chunk, n_hours)
            ticks.extend(
                self._ingest_chunk(
                    values[:, start:stop, :],
                    missing[:, start:stop, :],
                    None if calendar_rows is None else calendar_rows[start:stop],
                )
            )
        return ticks

    def _ingest_chunk(
        self,
        values: np.ndarray,
        missing: np.ndarray,
        calendar_rows: np.ndarray | None,
    ) -> list[IngestTick]:
        """One capacity-bounded chunk of :meth:`ingest_block`."""
        n_hours = values.shape[1]
        first = self.hours_seen
        hours = np.arange(first, first + n_hours)
        slots = hours % self.capacity
        n_kpis = self.n_kpis
        if calendar_rows is None:
            calendar_rows = np.stack(
                [self._default_calendar_row(int(hour)) for hour in hours]
            )

        # Eq. 1 over the whole block: the same contiguous KPI-axis
        # reduction as the per-hour path, column by column.
        tripped = values > self._thresholds[None, None, :]
        tripped &= ~missing
        score = (tripped * self._weights[None, None, :]).sum(axis=2) / self._weight_sum

        self.values[:, slots, :] = values
        self.missing[:, slots, :] = missing
        self.calendar[slots] = calendar_rows
        self.score_hourly[:, slots] = score
        self.labels_hourly[:, slots] = (score > self._threshold).astype(np.int8)

        # Extend the running cumulative sum: np.cumsum accumulates
        # left-to-right, exactly the per-hour `running_total += score`
        # addition order, so Eq. 3 trailing means match bitwise.
        cumsum = np.cumsum(
            np.concatenate([self._running_total[:, None], score], axis=1), axis=1
        )[:, 1:]
        self._cumsum[:, slots] = cumsum
        self._running_total = cumsum[:, -1].copy()

        trail_daily = self._trailing_block(hours, cumsum, HOURS_PER_DAY)
        trail_weekly = self._trailing_block(hours, cumsum, HOURS_PER_WEEK)
        trail_label = (trail_daily > self._threshold).astype(np.float64)
        self.trail_daily[:, slots] = trail_daily
        self.trail_weekly[:, slots] = trail_weekly
        self.trail_label[:, slots] = trail_label

        # Incremental Eq. 5 delta: the feature ring gets this block's
        # assembled channel columns once, here.
        features = self._features
        features[:, slots, :n_kpis] = values
        features[:, slots, n_kpis : n_kpis + 5] = calendar_rows[None, :, :]
        features[:, slots, n_kpis + 5] = score
        features[:, slots, n_kpis + 6] = trail_daily
        features[:, slots, n_kpis + 7] = trail_weekly
        features[:, slots, n_kpis + 8] = trail_label

        # Per-period accumulators, one contiguous segment per day (a
        # day segment never straddles a week boundary: 168 % 24 == 0).
        j = 0
        while j < n_hours:
            day_pos = (first + j) % HOURS_PER_DAY
            span = min(HOURS_PER_DAY - day_pos, n_hours - j)
            week_pos = (first + j) % HOURS_PER_WEEK
            self._day_scores[:, day_pos : day_pos + span] = score[:, j : j + span]
            self._week_scores[:, week_pos : week_pos + span] = score[:, j : j + span]
            j += span
            end_hour = first + j
            if end_hour % HOURS_PER_DAY == 0:
                s_day = self._day_scores.mean(axis=1)
                self._score_daily.append(s_day)
                self._labels_daily.append((s_day > self._threshold).astype(np.int8))
            if end_hour % HOURS_PER_WEEK == 0:
                s_week = self._week_scores.mean(axis=1)
                self._score_weekly.append(s_week)
                self._labels_weekly.append(
                    (s_week > self._threshold).astype(np.int8)
                )
        self.hours_seen = first + n_hours

        return [
            IngestTick(
                hour=int(hour),
                day=int(hour) // HOURS_PER_DAY,
                day_completed=(int(hour) + 1) % HOURS_PER_DAY == 0,
                week_completed=(int(hour) + 1) % HOURS_PER_WEEK == 0,
                t_day=(int(hour) + 1) // HOURS_PER_DAY - 1,
            )
            for hour in hours
        ]

    def _trailing(self, hour: int, window: int) -> np.ndarray:
        """Trailing mean of the hourly score ending at *hour* (Eq. 3)."""
        if hour >= window:
            lookback = self._cumsum[:, (hour - window) % self.capacity]
            return (self._running_total - lookback) / window
        return self._running_total / (hour + 1)

    def _trailing_block(
        self, hours: np.ndarray, cumsum: np.ndarray, window: int
    ) -> np.ndarray:
        """Eq. 3 trailing means for a just-written block of *hours*.

        *cumsum* holds the running totals of the block columns (already
        written to the ring, so intra-block lookbacks resolve); warm
        hours difference the ring lookback, cold hours (before one full
        window has streamed) divide by the hours seen so far — the same
        two branches as :meth:`_trailing`, element for element.
        """
        out = np.empty_like(cumsum)
        warm = hours >= window
        if warm.any():
            lookback = self._cumsum[:, (hours[warm] - window) % self.capacity]
            out[:, warm] = (cumsum[:, warm] - lookback) / window
        if not warm.all():
            cold = ~warm
            out[:, cold] = cumsum[:, cold] / (hours[cold] + 1)
        return out

    def _default_calendar_row(self, hour: int) -> np.ndarray:
        """Best-effort calendar row when the caller supplies none."""
        return default_calendar_row(
            hour, self.start_weekday, self.start_hour, self.start_day_of_month
        )

    def replay(
        self,
        dataset: Dataset,
        start_hour: int = 0,
        end_hour: int | None = None,
    ) -> Iterator[IngestTick]:
        """Feed a dataset's hours through :meth:`ingest_hour`, yielding ticks."""
        kpis = dataset.kpis
        if kpis.n_sectors != self.n_sectors or kpis.n_kpis != self.n_kpis:
            raise ValueError(
                f"dataset shape ({kpis.n_sectors} sectors, {kpis.n_kpis} KPIs) does "
                f"not match ingestor ({self.n_sectors}, {self.n_kpis})"
            )
        end = kpis.n_hours if end_hour is None else min(end_hour, kpis.n_hours)
        for hour in range(start_hour, end):
            yield self.ingest_hour(
                kpis.values[:, hour, :],
                kpis.missing[:, hour, :],
                dataset.calendar[hour],
            )

    @classmethod
    def for_dataset(
        cls,
        dataset: Dataset,
        score_config: ScoreConfig | None = None,
        w_max: int = 21,
    ) -> "StreamIngestor":
        """An ingestor shaped and time-anchored for *dataset*."""
        axis = dataset.time_axis
        return cls(
            n_sectors=dataset.n_sectors,
            n_kpis=dataset.kpis.n_kpis,
            score_config=score_config,
            w_max=w_max,
            start_weekday=axis.start_weekday,
            start_hour=axis.start_hour,
        )

    # ------------------------------------------------------------- windows
    def _ring_slots(self, lo_hour: int, hi_hour: int) -> np.ndarray:
        """Ring slots for global hours ``[lo_hour, hi_hour)``, validated."""
        if not 0 <= lo_hour < hi_hour:
            raise ValueError(f"invalid hour range [{lo_hour}, {hi_hour})")
        if hi_hour > self.hours_seen:
            raise ValueError(
                f"hour range [{lo_hour}, {hi_hour}) not fully ingested yet "
                f"({self.hours_seen} hours seen)"
            )
        if lo_hour < self.hours_seen - self.capacity:
            raise ValueError(
                f"hour {lo_hour} already evicted from the {self.capacity}-hour ring; "
                "increase w_max/capacity_hours"
            )
        return np.arange(lo_hour, hi_hour) % self.capacity

    def hourly_window(self, lo_hour: int, hi_hour: int) -> dict[str, np.ndarray]:
        """Raw ring contents for hours ``[lo_hour, hi_hour)`` (testing/debug)."""
        slots = self._ring_slots(lo_hour, hi_hour)
        return {
            "values": self.values[:, slots, :],
            "missing": self.missing[:, slots, :],
            "calendar": self.calendar[slots],
            "score_hourly": self.score_hourly[:, slots],
            "labels_hourly": self.labels_hourly[:, slots],
            "trail_daily": self.trail_daily[:, slots],
            "trail_weekly": self.trail_weekly[:, slots],
        }

    def feature_window(self, t_day: int, window: int) -> np.ndarray:
        """The Eq. 5 input block for a forecast made at day *t_day*.

        Bitwise equal to ``build_feature_tensor(dataset).window(t_day,
        window)`` when the same hours were replayed with the dataset's
        calendar rows.  Shape ``(n, 24 * window, n_kpis + 9)``.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        lo = HOURS_PER_DAY * (t_day - window + 1)
        hi = HOURS_PER_DAY * (t_day + 1)
        if lo < 0:
            raise ValueError(
                f"window of {window} days does not fit before day {t_day}"
            )
        slots = self._ring_slots(lo, hi)
        if self.missing[:, slots, :].any():
            raise ValueError(
                "forecast window contains missing KPI values; impute upstream "
                "(the batch pipeline rejects incomplete tensors the same way)"
            )
        # One gather from the persistent feature ring; the stored
        # columns are exactly what assemble_window() would concatenate
        # from the component rings (see _ingest_chunk), so the result
        # is bitwise-unchanged.
        return self._features[:, slots, :]

    def assembled_window(self, lo_hour: int, hi_hour: int) -> np.ndarray:
        """Eq. 5 channels for ``[lo_hour, hi_hour)`` via assemble_window.

        Reference path for the feature-ring parity tests: concatenates
        the component rings the way :meth:`feature_window` did before
        the persistent feature ring existed.
        """
        slots = self._ring_slots(lo_hour, hi_hour)
        return assemble_window(
            self.values[:, slots, :],
            self.calendar[slots],
            self.score_hourly[:, slots],
            self.trail_daily[:, slots],
            self.trail_weekly[:, slots],
            self.trail_label[:, slots],
        )

    # ------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Complete snapshot of the ingestor's mutable state.

        The returned mapping has two entries: ``"meta"`` (JSON-able
        construction parameters and the hour clock) and ``"arrays"``
        (copies of every numpy buffer, including ring slots beyond
        ``hours_seen``).  :meth:`from_state` rebuilds an ingestor that
        continues *bitwise-identically* to this one — the basis of the
        :mod:`repro.resilience.checkpoint` crash-recovery contract.
        """
        meta = {
            "hours_seen": self.hours_seen,
            "w_max": self.w_max,
            "capacity": self.capacity,
            "start_weekday": self.start_weekday,
            "start_hour": self.start_hour,
            "start_day_of_month": self.start_day_of_month,
            "weights": list(self.config.weights),
            "thresholds": list(self.config.thresholds),
            "hotspot_threshold": self.config.hotspot_threshold,
        }
        arrays = {
            "values": self.values.copy(),
            "missing": self.missing.copy(),
            "calendar": self.calendar.copy(),
            "score_hourly": self.score_hourly.copy(),
            "labels_hourly": self.labels_hourly.copy(),
            "trail_daily": self.trail_daily.copy(),
            "trail_weekly": self.trail_weekly.copy(),
            "trail_label": self.trail_label.copy(),
            "cumsum": self._cumsum.copy(),
            "running_total": self._running_total.copy(),
            "day_scores": self._day_scores.copy(),
            "week_scores": self._week_scores.copy(),
            "score_daily": self._score_daily.view.copy(),
            "labels_daily": self._labels_daily.view.copy(),
            "score_weekly": self._score_weekly.view.copy(),
            "labels_weekly": self._labels_weekly.view.copy(),
        }
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def from_state(cls, state: dict) -> "StreamIngestor":
        """Rebuild an ingestor from a :meth:`state_dict` snapshot."""
        meta, arrays = state["meta"], state["arrays"]
        config = ScoreConfig(
            weights=tuple(float(w) for w in meta["weights"]),
            thresholds=tuple(float(t) for t in meta["thresholds"]),
            hotspot_threshold=float(meta["hotspot_threshold"]),
        )
        ingestor = cls(
            n_sectors=int(arrays["values"].shape[0]),
            n_kpis=int(arrays["values"].shape[2]),
            score_config=config,
            w_max=int(meta["w_max"]),
            capacity_hours=int(meta["capacity"]),
            start_weekday=int(meta["start_weekday"]),
            start_hour=int(meta["start_hour"]),
            start_day_of_month=int(meta["start_day_of_month"]),
        )
        for attr, key in (
            ("values", "values"),
            ("missing", "missing"),
            ("calendar", "calendar"),
            ("score_hourly", "score_hourly"),
            ("labels_hourly", "labels_hourly"),
            ("trail_daily", "trail_daily"),
            ("trail_weekly", "trail_weekly"),
            ("trail_label", "trail_label"),
            ("_cumsum", "cumsum"),
            ("_running_total", "running_total"),
            ("_day_scores", "day_scores"),
            ("_week_scores", "week_scores"),
        ):
            getattr(ingestor, attr)[...] = arrays[key]
        ingestor._score_daily = _History.from_matrix(
            np.asarray(arrays["score_daily"], dtype=np.float64)
        )
        ingestor._labels_daily = _History.from_matrix(
            np.asarray(arrays["labels_daily"], dtype=np.int8)
        )
        ingestor._score_weekly = _History.from_matrix(
            np.asarray(arrays["score_weekly"], dtype=np.float64)
        )
        ingestor._labels_weekly = _History.from_matrix(
            np.asarray(arrays["labels_weekly"], dtype=np.int8)
        )
        ingestor.hours_seen = int(meta["hours_seen"])
        # The feature ring is derived state and deliberately absent
        # from state_dict() (snapshots stay byte-compatible with
        # pre-feature-ring checkpoints); rebuild it from the restored
        # component rings.
        ingestor._rebuild_features()
        return ingestor

    def _rebuild_features(self) -> None:
        """Recompute the Eq. 5 feature ring from the component rings."""
        n_kpis = self.n_kpis
        features = self._features
        features[:, :, :n_kpis] = self.values
        features[:, :, n_kpis : n_kpis + 5] = self.calendar[None, :, :]
        features[:, :, n_kpis + 5] = self.score_hourly
        features[:, :, n_kpis + 6] = self.trail_daily
        features[:, :, n_kpis + 7] = self.trail_weekly
        features[:, :, n_kpis + 8] = self.trail_label
