"""Batched online prediction from ring-buffer state.

:class:`PredictionEngine` ties the serving pieces together: it feeds
hourly ticks into a :class:`~repro.serve.ingest.StreamIngestor`, pulls
trained models lazily from a :class:`~repro.serve.registry.ModelRegistry`,
and answers ``predict(horizon)`` by assembling the Eq. 5 feature window
directly from the ring buffers — no batch feature-tensor construction,
no re-running of the offline pipeline.

Predictions are cached per ``(t_day, model, model-version, horizon,
window)``.  Within a day the ring state backing a forecast cannot
change (forecasts are made from *complete* days), so repeated queries
are O(1) dictionary hits.  Two things invalidate: **day rollover clears
everything**, and **an active-version swap**
(:meth:`PredictionEngine.set_active_version`, or an explicit
:meth:`~PredictionEngine.invalidate`) clears everything too — the
version lives in the cache key as well, so even a missed invalidation
can never serve a stale champion's forecasts for a promoted model.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import BaselineModel
from repro.serve.ingest import IngestTick, StreamIngestor
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.telemetry import ServeTelemetry

__all__ = ["PredictionEngine"]


class PredictionEngine:
    """Serve hot-spot forecasts from incrementally ingested KPI state.

    Parameters
    ----------
    ingestor:
        The hourly ingestion state machine (ring buffers + histories).
    registry:
        Trained-model store; models load lazily on first use.
    target:
        Forecasting task the served models were trained for.
    model:
        Default model name used when ``predict`` gets none.
    window:
        Default past window ``w`` (days); must fit the ingestor's ring.
    telemetry:
        Shared telemetry sink; a private one is created if omitted.
    """

    def __init__(
        self,
        ingestor: StreamIngestor,
        registry: ModelRegistry,
        target: str = "hot",
        model: str = "RF-F1",
        window: int = 7,
        telemetry: ServeTelemetry | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if window > ingestor.w_max:
            raise ValueError(
                f"default window {window} exceeds the ingestor's w_max {ingestor.w_max}"
            )
        self.ingestor = ingestor
        self.registry = registry
        self.target = target
        self.default_model = model
        self.default_window = window
        self.telemetry = telemetry or ServeTelemetry()
        self._cache: dict[tuple[int, str, int | None, int, int], np.ndarray] = {}
        # Lifecycle pins: model name -> registry version served for it.
        # Unpinned names resolve to the unversioned registry entry, the
        # PR 1 behaviour.
        self._active_versions: dict[str, int | None] = {}

    # ---------------------------------------------------------- versioning
    def active_version(self, model_name: str | None = None) -> int | None:
        """The registry version currently served for *model_name*."""
        return self._active_versions.get(model_name or self.default_model)

    def set_active_version(self, model_name: str, version: int | None) -> None:
        """Pin *model_name* to a registry *version* and drop the cache.

        ``None`` unpins back to the unversioned entry.  The cache clear
        makes the swap take effect immediately — within the same day —
        rather than at the next rollover.
        """
        if version is not None and version < 1:
            raise ValueError(f"version must be >= 1 or None, got {version}")
        previous = self._active_versions.get(model_name)
        self._active_versions[model_name] = version
        if previous != version:
            self.invalidate()
            self.telemetry.inc("model_swaps")

    def invalidate(self) -> None:
        """Explicitly drop every cached forecast."""
        if self._cache:
            self.telemetry.inc("cache_invalidations")
        self._cache.clear()

    # ------------------------------------------------------------- ingest
    def ingest_hour(
        self,
        values: np.ndarray,
        missing: np.ndarray | None = None,
        calendar_row: np.ndarray | None = None,
    ) -> IngestTick:
        """Ingest one hourly sample; clears the cache on day rollover."""
        with self.telemetry.timer("ingest_seconds"):
            tick = self.ingestor.ingest_hour(values, missing, calendar_row)
        self.telemetry.inc("ingest_ticks")
        if tick.day_completed:
            self._cache.clear()
            self.telemetry.inc("days_completed")
        if tick.week_completed:
            self.telemetry.inc("weeks_completed")
        return tick

    # ------------------------------------------------------------ predict
    @property
    def t_day(self) -> int:
        """The day forecasts are currently made at (last complete day)."""
        return self.ingestor.last_complete_day

    def predict(
        self,
        horizon: int,
        model: str | None = None,
        window: int | None = None,
        sector_ids: np.ndarray | list[int] | None = None,
    ) -> np.ndarray:
        """Hot-spot scores for day ``t_day + horizon``.

        Returns one ranking score per requested sector (all sectors when
        *sector_ids* is omitted), computed by the registered model for
        ``(target, model, horizon, window)`` from the current ring
        state.  Scores for the full network are cached per
        ``(t_day, model, horizon, window)``, so slicing different
        *sector_ids* out of the same forecast costs O(len(ids)).
        """
        model_name = model or self.default_model
        window = self.default_window if window is None else window
        t_day = self.t_day
        if t_day < 0:
            raise RuntimeError("no complete day ingested yet; cannot forecast")
        cache_key = (
            t_day, model_name, self._active_versions.get(model_name), horizon, window
        )
        scores = self._cache.get(cache_key)
        if scores is None:
            self.telemetry.inc("cache_misses")
            with self.telemetry.timer("predict_seconds"):
                scores, cacheable = self._compute_entry(
                    model_name, t_day, horizon, window
                )
            if cacheable:
                self._cache[cache_key] = scores
        else:
            self.telemetry.inc("cache_hits")
        self.telemetry.inc("predictions_served")
        if sector_ids is not None:
            return scores[np.asarray(sector_ids)].copy()
        return scores.copy()

    def _compute_entry(
        self, model_name: str, t_day: int, horizon: int, window: int
    ) -> tuple[np.ndarray, bool]:
        """Compute a forecast plus a *cacheable* flag.

        The flag is the seam the resilience layer overrides: a degraded
        (fallback) forecast returns ``False`` so it is served but never
        cached, and the registry is re-consulted on the next refresh.
        """
        return self._compute(model_name, t_day, horizon, window), True

    def _compute(
        self, model_name: str, t_day: int, horizon: int, window: int
    ) -> np.ndarray:
        key = ModelKey(
            self.target, model_name, horizon, window,
            version=self._active_versions.get(model_name),
        )
        model = self.registry.get(key)
        if isinstance(model, BaselineModel):
            return np.asarray(
                model.forecast(
                    self.ingestor.score_daily,
                    self.ingestor.labels_daily,
                    t_day,
                    horizon,
                    window,
                ),
                dtype=np.float64,
            )
        window_block = self.ingestor.feature_window(t_day, window)
        return np.asarray(model.forecast_window(window_block), dtype=np.float64)

    # -------------------------------------------------------------- stats
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def stats(self) -> dict:
        """Telemetry + cache + registry snapshot."""
        snapshot = self.telemetry.stats()
        snapshot["cache"] = {"entries": len(self._cache), "t_day": self.t_day}
        snapshot["registry"] = self.registry.stats()
        return snapshot
