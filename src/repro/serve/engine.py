"""Batched online prediction from ring-buffer state.

:class:`PredictionEngine` ties the serving pieces together: it feeds
hourly ticks into a :class:`~repro.serve.ingest.StreamIngestor`, pulls
trained models lazily from a :class:`~repro.serve.registry.ModelRegistry`,
and answers ``predict(horizon)`` by assembling the Eq. 5 feature window
directly from the ring buffers — no batch feature-tensor construction,
no re-running of the offline pipeline.

Predictions are cached per ``(t_day, model, model-version, horizon,
window)``.  Within a day the ring state backing a forecast cannot
change (forecasts are made from *complete* days), so repeated queries
are O(1) dictionary hits.  Two things invalidate: **day rollover clears
everything**, and **an active-version swap**
(:meth:`PredictionEngine.set_active_version`, or an explicit
:meth:`~PredictionEngine.invalidate`) clears everything too — the
version lives in the cache key as well, so even a missed invalidation
can never serve a stale champion's forecasts for a promoted model.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import BaselineModel
from repro.core.feature_sets import percentile_features
from repro.serve.ingest import IngestTick, StreamIngestor
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.telemetry import ServeTelemetry

__all__ = ["PredictionEngine"]


class PredictionEngine:
    """Serve hot-spot forecasts from incrementally ingested KPI state.

    Parameters
    ----------
    ingestor:
        The hourly ingestion state machine (ring buffers + histories).
    registry:
        Trained-model store; models load lazily on first use.
    target:
        Forecasting task the served models were trained for.
    model:
        Default model name used when ``predict`` gets none.
    window:
        Default past window ``w`` (days); must fit the ingestor's ring.
    telemetry:
        Shared telemetry sink; a private one is created if omitted.
    """

    def __init__(
        self,
        ingestor: StreamIngestor,
        registry: ModelRegistry,
        target: str = "hot",
        model: str = "RF-F1",
        window: int = 7,
        telemetry: ServeTelemetry | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if window > ingestor.w_max:
            raise ValueError(
                f"default window {window} exceeds the ingestor's w_max {ingestor.w_max}"
            )
        self.ingestor = ingestor
        self.registry = registry
        self.target = target
        self.default_model = model
        self.default_window = window
        self.telemetry = telemetry or ServeTelemetry()
        self._cache: dict[tuple[int, str, int | None, int, int], np.ndarray] = {}
        # Design matrices shared across horizons: every horizon's model
        # for the same name applies the same feature view to the same
        # window, so the (usually expensive) view runs once per day.
        self._design_cache: dict[tuple[int, int, str], np.ndarray] = {}
        # Per-day Eq. 5 percentile blocks.  A completed day's ring
        # columns never change, so its (n, channels * 5) percentile
        # block is computed once ever and windows are assembled by
        # concatenation instead of re-reducing w days of hours.
        self._day_pct: dict[int, np.ndarray] = {}
        # Lifecycle pins: model name -> registry version served for it.
        # Unpinned names resolve to the unversioned registry entry, the
        # PR 1 behaviour.
        self._active_versions: dict[str, int | None] = {}

    # ---------------------------------------------------------- versioning
    def active_version(self, model_name: str | None = None) -> int | None:
        """The registry version currently served for *model_name*."""
        return self._active_versions.get(model_name or self.default_model)

    def set_active_version(self, model_name: str, version: int | None) -> None:
        """Pin *model_name* to a registry *version* and drop the cache.

        ``None`` unpins back to the unversioned entry.  The cache clear
        makes the swap take effect immediately — within the same day —
        rather than at the next rollover.
        """
        if version is not None and version < 1:
            raise ValueError(f"version must be >= 1 or None, got {version}")
        previous = self._active_versions.get(model_name)
        self._active_versions[model_name] = version
        if previous != version:
            self.invalidate()
            self.telemetry.inc("model_swaps")

    def invalidate(self) -> None:
        """Explicitly drop every cached forecast."""
        if self._cache:
            self.telemetry.inc("cache_invalidations")
        self._cache.clear()

    # ------------------------------------------------------------- ingest
    def ingest_hour(
        self,
        values: np.ndarray,
        missing: np.ndarray | None = None,
        calendar_row: np.ndarray | None = None,
    ) -> IngestTick:
        """Ingest one hourly sample; clears the cache on day rollover."""
        with self.telemetry.timer("ingest_seconds"):
            tick = self.ingestor.ingest_hour(values, missing, calendar_row)
        self.telemetry.inc("ingest_ticks")
        if tick.day_completed:
            self._roll_day()
            self.telemetry.inc("days_completed")
        if tick.week_completed:
            self.telemetry.inc("weeks_completed")
        return tick

    def ingest_block(
        self,
        values: np.ndarray,
        missing: np.ndarray | None = None,
        calendar_rows: np.ndarray | None = None,
    ) -> list[IngestTick]:
        """Ingest a micro-batch of consecutive hours as one array op.

        Delegates to :meth:`StreamIngestor.ingest_block` (bitwise equal
        to per-hour ingestion) and applies the same cache/telemetry
        bookkeeping per completed period.  Callers that emit per-day
        events (the service layer) must split their blocks at day
        boundaries themselves; at engine level a mid-block rollover
        only means the day cache is cleared before the next predict.
        """
        with self.telemetry.timer("ingest_seconds"):
            ticks = self.ingestor.ingest_block(values, missing, calendar_rows)
        self.telemetry.inc("ingest_ticks", len(ticks))
        for tick in ticks:
            if tick.day_completed:
                self._roll_day()
                self.telemetry.inc("days_completed")
            if tick.week_completed:
                self.telemetry.inc("weeks_completed")
        return ticks

    def _roll_day(self) -> None:
        """Day rollover: drop forecast/design caches, prune day blocks."""
        self._cache.clear()
        self._design_cache.clear()
        oldest = self.ingestor.last_complete_day - self.ingestor.w_max
        if oldest > 0:
            for day in [d for d in self._day_pct if d < oldest]:
                del self._day_pct[day]

    # ------------------------------------------------------------ predict
    @property
    def t_day(self) -> int:
        """The day forecasts are currently made at (last complete day)."""
        return self.ingestor.last_complete_day

    def predict(
        self,
        horizon: int,
        model: str | None = None,
        window: int | None = None,
        sector_ids: np.ndarray | list[int] | None = None,
    ) -> np.ndarray:
        """Hot-spot scores for day ``t_day + horizon``.

        Returns one ranking score per requested sector (all sectors when
        *sector_ids* is omitted), computed by the registered model for
        ``(target, model, horizon, window)`` from the current ring
        state.  Scores for the full network are cached per
        ``(t_day, model, horizon, window)``, so slicing different
        *sector_ids* out of the same forecast costs O(len(ids)).
        """
        model_name = model or self.default_model
        window = self.default_window if window is None else window
        t_day = self.t_day
        if t_day < 0:
            raise RuntimeError("no complete day ingested yet; cannot forecast")
        cache_key = (
            t_day, model_name, self._active_versions.get(model_name), horizon, window
        )
        scores = self._cache.get(cache_key)
        if scores is None:
            self.telemetry.inc("cache_misses")
            with self.telemetry.timer("predict_seconds"):
                scores, cacheable = self._compute_entry(
                    model_name, t_day, horizon, window
                )
            if cacheable:
                # Freeze the cached array and hand it out without
                # copying: cache hits are zero-allocation, and any
                # caller that tries to mutate a served forecast fails
                # loudly instead of silently corrupting the cache.
                scores.flags.writeable = False
                self._cache[cache_key] = scores
        else:
            self.telemetry.inc("cache_hits")
        self.telemetry.inc("predictions_served")
        if sector_ids is not None:
            # Fancy indexing materialises a fresh, writable slice.
            return scores[np.asarray(sector_ids)]
        return scores

    def _compute_entry(
        self, model_name: str, t_day: int, horizon: int, window: int
    ) -> tuple[np.ndarray, bool]:
        """Compute a forecast plus a *cacheable* flag.

        The flag is the seam the resilience layer overrides: a degraded
        (fallback) forecast returns ``False`` so it is served but never
        cached, and the registry is re-consulted on the next refresh.
        """
        return self._compute(model_name, t_day, horizon, window), True

    def _compute(
        self, model_name: str, t_day: int, horizon: int, window: int
    ) -> np.ndarray:
        key = ModelKey(
            self.target, model_name, horizon, window,
            version=self._active_versions.get(model_name),
        )
        model = self.registry.get(key)
        if isinstance(model, BaselineModel):
            return np.asarray(
                model.forecast(
                    self.ingestor.score_daily,
                    self.ingestor.labels_daily,
                    t_day,
                    horizon,
                    window,
                ),
                dtype=np.float64,
            )
        design = self._design(model, t_day, window)
        if design is None:
            window_block = self.ingestor.feature_window(t_day, window)
            return np.asarray(model.forecast_window(window_block), dtype=np.float64)
        return np.asarray(model.forecast_design(design), dtype=np.float64)

    def _design(
        self, model, t_day: int, window: int
    ) -> np.ndarray | None:
        """Design matrix for *model* at ``(t_day, window)``, cached per view.

        Returns ``None`` for models that don't expose the design seam
        (the caller falls back to :meth:`forecast_window`).  For the
        Eq. 5 percentile view the matrix is assembled from per-day
        percentile blocks — its columns are day-major, so concatenating
        the single-day reductions is bitwise equal to reducing the full
        window at once, and a completed day's block never needs
        recomputing.
        """
        view = getattr(model, "feature_view", None)
        if view is None or not hasattr(model, "forecast_design"):
            return None
        key = (t_day, window, view)
        design = self._design_cache.get(key)
        if design is None:
            self.telemetry.inc("design_cache_misses")
            if view == "percentiles" and t_day - window + 1 >= 0:
                design = np.concatenate(
                    [
                        self._day_percentiles(day)
                        for day in range(t_day - window + 1, t_day + 1)
                    ],
                    axis=1,
                )
            else:
                design = model.build_design(
                    self.ingestor.feature_window(t_day, window)
                )
            design.flags.writeable = False
            self._design_cache[key] = design
        else:
            self.telemetry.inc("design_cache_hits")
        return design

    def _day_percentiles(self, day: int) -> np.ndarray:
        """The ``(n, channels * 5)`` percentile block for one complete day."""
        block = self._day_pct.get(day)
        if block is None:
            block = percentile_features(self.ingestor.feature_window(day, 1))
            block.flags.writeable = False
            self._day_pct[day] = block
        return block

    # -------------------------------------------------------------- stats
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def stats(self) -> dict:
        """Telemetry + cache + registry snapshot."""
        snapshot = self.telemetry.stats()
        snapshot["cache"] = {"entries": len(self._cache), "t_day": self.t_day}
        snapshot["registry"] = self.registry.stats()
        return snapshot
