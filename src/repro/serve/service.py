"""The online hot-spot forecasting service loop.

:class:`HotSpotService` wraps a :class:`~repro.serve.engine.PredictionEngine`
with operator-facing behaviour: every time a day of KPIs completes, it
refreshes the configured ``(model, horizon)`` forecasts and emits alert
events for the sectors most likely to run hot.  Two drivers are
provided:

* the *programmatic* driver — call :meth:`ingest_hour` from your own
  loop and collect the returned events (this is what the CLI's replay
  mode does);
* the *JSONL* driver — :meth:`run_jsonl` reads one JSON object per line
  from an input stream (``{"op": "tick", ...}``, ``{"op": "predict"}``,
  ``{"op": "stats"}``, ``{"op": "stop"}``) and writes event objects to
  an output stream, so the service can sit behind a pipe or socket.

Alert policy: per refresh, sectors are ranked by forecast score; the
top ``top_k`` are alerted, optionally restricted to scores at or above
``alert_threshold``.  Every event is a plain JSON-serialisable dict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Callable, Iterable

import numpy as np

from repro.data.tensor import HOURS_PER_DAY
from repro.serve.engine import PredictionEngine
from repro.serve.ingest import IngestTick
from repro.serve.telemetry import ServeTelemetry

__all__ = ["ServeConfig", "HotSpotService"]


@dataclass(frozen=True)
class ServeConfig:
    """Service behaviour knobs.

    Attributes
    ----------
    horizons:
        Horizons (days ahead) refreshed after every completed day.
    start_day:
        First ``t_day`` the service makes forecasts for; earlier days
        only warm the ring buffers (and, in replay bootstraps, overlap
        the training period).
    top_k:
        Number of top-ranked sectors eligible for an alert per refresh.
    alert_threshold:
        Optional minimum forecast score; ``None`` alerts the top-k
        unconditionally (classifier scores are probabilities, baseline
        scores are unbounded rankings — pick a threshold per model).
    """

    horizons: tuple[int, ...] = (1,)
    start_day: int = 0
    top_k: int = 5
    alert_threshold: float | None = None

    def __post_init__(self) -> None:
        if not self.horizons or min(self.horizons) < 1:
            raise ValueError(f"horizons must be non-empty and >= 1: {self.horizons}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")


@dataclass
class HotSpotService:
    """Ingest ticks, refresh forecasts, emit hot-spot alerts."""

    engine: PredictionEngine
    config: ServeConfig = field(default_factory=ServeConfig)
    day_hooks: "list[Callable[[IngestTick], list[dict]]]" = field(default_factory=list)

    @property
    def telemetry(self) -> ServeTelemetry:
        return self.engine.telemetry

    def add_day_hook(self, hook: "Callable[[IngestTick], list[dict]]") -> None:
        """Register a callback run after each completed day's alerts.

        Hooks receive the day-completing :class:`IngestTick` and return
        events to append to the tick's event list — the seam the model
        lifecycle controller plugs into, so drift/retrain/promotion
        events flow through every driver (programmatic replay, JSONL,
        and the resilient guard) identically.  Hooks run *after* the
        day's alerts: the day that completes is still served by the
        champion that was active while it streamed in, and a promotion
        takes effect from the next forecast onwards.
        """
        self.day_hooks.append(hook)

    # ----------------------------------------------------------- programmatic
    def ingest_hour(
        self,
        values: np.ndarray,
        missing: np.ndarray | None = None,
        calendar_row: np.ndarray | None = None,
    ) -> list[dict]:
        """Ingest one hour; returns the events this tick produced.

        Most ticks return ``[]``.  The tick completing a day returns one
        ``"day"`` summary event plus one ``"alert"`` event per configured
        horizon (when the forecast day is in scope and any sector
        qualifies).
        """
        tick = self.engine.ingest_hour(values, missing, calendar_row)
        if not tick.day_completed:
            return []
        return self._day_events(tick)

    def ingest_block(
        self,
        values: np.ndarray,
        missing: np.ndarray | None = None,
        calendar_rows: np.ndarray | None = None,
    ) -> list[dict]:
        """Ingest a micro-batch of hours; returns all resulting events.

        Splits the block at day-completion boundaries internally, so
        every ``"day"``/``"alert"`` event (and day hook) is computed
        against exactly the engine state the per-hour driver would see —
        the emitted event stream is identical to calling
        :meth:`ingest_hour` once per block column, just cheaper.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 3:
            raise ValueError(
                f"values must be (n_sectors, n_hours, n_kpis), got {values.shape}"
            )
        if missing is not None:
            missing = np.asarray(missing, dtype=bool)
        if calendar_rows is not None:
            calendar_rows = np.asarray(calendar_rows, dtype=np.float64)
        n_hours = values.shape[1]
        first = self.engine.ingestor.hours_seen
        events: list[dict] = []
        start = 0
        while start < n_hours:
            to_boundary = HOURS_PER_DAY - (first + start) % HOURS_PER_DAY
            stop = min(start + to_boundary, n_hours)
            ticks = self.engine.ingest_block(
                values[:, start:stop, :],
                None if missing is None else missing[:, start:stop, :],
                None if calendar_rows is None else calendar_rows[start:stop],
            )
            last = ticks[-1]
            if last.day_completed:
                events.extend(self._day_events(last))
            start = stop
        return events

    def _day_events(self, tick: IngestTick) -> list[dict]:
        """The day summary + alerts + hook events for a completed day."""
        events: list[dict] = []
        labels = self.engine.ingestor.labels_daily
        currently_hot = np.nonzero(labels[:, tick.t_day] == 1)[0]
        events.append(
            {
                "type": "day",
                "t_day": tick.t_day,
                "hot_sectors": [int(i) for i in currently_hot],
            }
        )
        if tick.t_day >= self.config.start_day:
            for horizon in self.config.horizons:
                alert = self._refresh_horizon(tick, horizon)
                if alert is not None:
                    events.append(alert)
                    self.telemetry.inc("alerts_emitted")
        for hook in self.day_hooks:
            events.extend(hook(tick))
        return events

    def _refresh_horizon(self, tick: IngestTick, horizon: int) -> dict | None:
        scores = self.engine.predict(horizon)
        order = np.argsort(-scores, kind="stable")[: self.config.top_k]
        if self.config.alert_threshold is not None:
            order = order[scores[order] >= self.config.alert_threshold]
        if order.size == 0:
            return None
        return {
            "type": "alert",
            "t_day": tick.t_day,
            "horizon": horizon,
            "forecast_day": tick.t_day + horizon,
            "model": self.engine.default_model,
            "sectors": [int(i) for i in order],
            "scores": [float(scores[i]) for i in order],
        }

    def stats(self) -> dict:
        """Engine + registry + telemetry snapshot."""
        return self.engine.stats()

    # ----------------------------------------------------------------- jsonl
    def run_jsonl(
        self,
        lines: Iterable[str],
        out: IO[str],
        tick_handler: "Callable[..., list[dict]] | None" = None,
    ) -> int:
        """Drive the service from a JSON-lines stream.

        Supported operations (one JSON object per input line):

        * ``{"op": "tick", "values": [[...]], "missing": ..., "calendar": ...,
          "hour": ...}`` — ingest one hour; emits any resulting
          day/alert events.  *tick_handler* overrides how the tick is
          applied: it is called as ``tick_handler(values, missing,
          calendar, hour)`` and must return the tick's events — this is
          how :class:`~repro.resilience.guard.ResilientHotSpotService`
          puts validation, quarantine, and journaling in front of the
          stream (the optional declared ``hour`` only matters there,
          for duplicate/gap detection).  The default handler ingests
          directly.
        * ``{"op": "predict", "horizon": h, "model": ..., "window": ...}``
          — on-demand forecast; emits a ``"prediction"`` event.
        * ``{"op": "stats"}`` — emits a ``"stats"`` snapshot event.
        * ``{"op": "stop"}`` — terminates the loop.

        Malformed lines and failed operations emit structured
        ``{"event": "error", ...}`` objects (with the offending line
        number, operation, and a machine-readable ``reason``) and the
        loop keeps running — a serving process must not die on one bad
        payload.  Only output-stream failures (:class:`OSError` from the
        event sink) propagate: with the emit channel gone the service
        cannot report anything, so the error is unrecoverable and the
        CLI turns it into exit code 1.  Returns the number of processed
        operations.
        """
        if tick_handler is None:
            tick_handler = self._ingest_tick
        processed = 0
        for line_no, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            processed += 1
            try:
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    self._emit_error(out, line_no, None, "malformed_json", error)
                    continue
                if not isinstance(request, dict):
                    self._emit_error(
                        out, line_no, None, "not_an_object",
                        TypeError(f"expected a JSON object, got {type(request).__name__}"),
                    )
                    continue
                op = request.get("op")
                if op == "stop":
                    self._emit(out, {"type": "stopped", "processed": processed})
                    break
                if op == "tick" or op == "predict" or op == "stats":
                    self._handle(out, request, op, tick_handler)
                else:
                    self._emit_error(
                        out, line_no, op, "unknown_op",
                        ValueError(f"unknown op {op!r}"),
                    )
            except OSError:
                # The event sink itself failed; nothing can be reported
                # downstream, so let the caller decide (CLI: exit 1).
                raise
            except Exception as error:  # noqa: BLE001 - service must survive bad input
                op = request.get("op") if isinstance(request, dict) else None
                self._emit_error(out, line_no, op, "operation_failed", error)
        return processed

    def _emit_error(
        self, out: IO[str], line_no: int, op: str | None, reason: str, error: Exception
    ) -> None:
        self.telemetry.inc("stream_errors")
        self._emit(
            out,
            {
                "event": "error",
                "type": "error",
                "line": line_no,
                "op": op,
                "reason": reason,
                "error": type(error).__name__,
                "message": str(error),
            },
        )

    def _ingest_tick(
        self, values, missing, calendar_row, hour=None
    ) -> list[dict]:
        """Default JSONL tick handler: plain ingest (declared hour unused)."""
        return self.ingest_hour(values, missing, calendar_row)

    def _handle(
        self,
        out: IO[str],
        request: dict,
        op: str | None,
        tick_handler: "Callable[..., list[dict]]",
    ) -> None:
        if op == "tick":
            values = np.asarray(request["values"], dtype=np.float64)
            missing = request.get("missing")
            if missing is not None:
                missing = np.asarray(missing, dtype=bool)
            calendar = request.get("calendar")
            if calendar is not None:
                calendar = np.asarray(calendar, dtype=np.float64)
            hour = request.get("hour")
            if hour is not None:
                hour = int(hour)
            for event in tick_handler(values, missing, calendar, hour):
                self._emit(out, event)
        elif op == "predict":
            scores = self.engine.predict(
                int(request["horizon"]),
                model=request.get("model"),
                window=request.get("window"),
            )
            self._emit(
                out,
                {
                    "type": "prediction",
                    "t_day": self.engine.t_day,
                    "horizon": int(request["horizon"]),
                    "scores": [float(s) for s in scores],
                },
            )
        elif op == "stats":
            self._emit(out, {"type": "stats", **self.stats()})

    @staticmethod
    def _emit(out: IO[str], event: dict) -> None:
        out.write(json.dumps(event) + "\n")
        out.flush()
